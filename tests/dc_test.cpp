// Unit tests for the data-center model: servers, power, placement state,
// exact energy/overload accounting.

#include <gtest/gtest.h>

#include "ecocloud/dc/datacenter.hpp"

namespace dc = ecocloud::dc;

namespace {

dc::DataCenter make_dc() {
  return dc::DataCenter(dc::PowerModel(0.70, 3.0, 20.0, 100.0));
}

}  // namespace

// -------------------------------------------------------------------- server

TEST(Server, CapacityAndUtilization) {
  dc::ServerSoA s_soa;
  dc::Server s = s_soa.add(4, 2000.0);
  EXPECT_DOUBLE_EQ(s.capacity_mhz(), 8000.0);
  EXPECT_DOUBLE_EQ(s.utilization(), 0.0);
  s.host_vm(0, 2000.0, 0.0);
  EXPECT_DOUBLE_EQ(s.utilization(), 0.25);
  EXPECT_DOUBLE_EQ(s.demand_ratio(), 0.25);
}

TEST(Server, UtilizationClampsAtOneButRatioDoesNot) {
  dc::ServerSoA s_soa;
  dc::Server s = s_soa.add(2, 1000.0);
  s.host_vm(0, 3000.0, 0.0);
  EXPECT_DOUBLE_EQ(s.utilization(), 1.0);
  EXPECT_DOUBLE_EQ(s.demand_ratio(), 1.5);
  EXPECT_TRUE(s.overloaded());
  EXPECT_NEAR(s.granted_fraction(), 2.0 / 3.0, 1e-12);
}

TEST(Server, DecisionUtilizationIncludesReservations) {
  dc::ServerSoA s_soa;
  dc::Server s = s_soa.add(4, 2000.0);
  s.host_vm(0, 2000.0, 0.0);
  s.add_reservation(2000.0);
  EXPECT_DOUBLE_EQ(s.decision_utilization(), 0.5);
  s.remove_reservation(2000.0);
  EXPECT_DOUBLE_EQ(s.decision_utilization(), 0.25);
}

TEST(Server, UnhostRemovesCorrectVm) {
  dc::ServerSoA s_soa;
  dc::Server s = s_soa.add(4, 2000.0);
  s.host_vm(7, 100.0, 0.0);
  s.host_vm(8, 200.0, 0.0);
  s.unhost_vm(7, 100.0, 0.0);
  ASSERT_EQ(s.vm_count(), 1u);
  EXPECT_EQ(s.vms()[0], 8u);
  EXPECT_DOUBLE_EQ(s.demand_mhz(), 200.0);
  s.unhost_vm(8, 200.0, 0.0);
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.demand_mhz(), 0.0);
}

TEST(Server, GraceWindow) {
  dc::ServerSoA s_soa;
  dc::Server s = s_soa.add(4, 2000.0);
  EXPECT_FALSE(s.in_grace(0.0));
  s.set_grace_until(100.0);
  EXPECT_TRUE(s.in_grace(99.0));
  EXPECT_FALSE(s.in_grace(100.0));
}

TEST(Server, RejectsBadConstruction) {
  dc::ServerSoA soa;
  EXPECT_THROW(soa.add(0, 2000.0), std::invalid_argument);
  EXPECT_THROW(soa.add(4, 0.0), std::invalid_argument);
  EXPECT_THROW(soa.add(4, 2000.0, -1.0), std::invalid_argument);
}

TEST(Server, StateToString) {
  EXPECT_STREQ(dc::to_string(dc::ServerState::kHibernated), "hibernated");
  EXPECT_STREQ(dc::to_string(dc::ServerState::kBooting), "booting");
  EXPECT_STREQ(dc::to_string(dc::ServerState::kActive), "active");
}

// --------------------------------------------------------------------- power

TEST(PowerModel, PeakAndIdle) {
  dc::PowerModel pm(0.70, 3.0, 20.0, 100.0);
  EXPECT_DOUBLE_EQ(pm.peak_w(6), 220.0);
  EXPECT_DOUBLE_EQ(pm.idle_w(6), 154.0);
}

TEST(PowerModel, LinearInUtilization) {
  dc::PowerModel pm(0.70, 3.0, 20.0, 100.0);
  EXPECT_DOUBLE_EQ(pm.active_power_w(6, 0.0), 154.0);
  EXPECT_DOUBLE_EQ(pm.active_power_w(6, 1.0), 220.0);
  EXPECT_DOUBLE_EQ(pm.active_power_w(6, 0.5), 187.0);
  // Overload clamps at peak.
  EXPECT_DOUBLE_EQ(pm.active_power_w(6, 1.5), 220.0);
}

TEST(PowerModel, PerStatePower) {
  dc::PowerModel pm(0.70, 3.0, 20.0, 100.0);
  dc::ServerSoA s_soa;
  dc::Server s = s_soa.add(6, 2000.0);
  EXPECT_DOUBLE_EQ(pm.power_w(s), 3.0);  // hibernated
  s.set_state(dc::ServerState::kBooting);
  EXPECT_DOUBLE_EQ(pm.power_w(s), 220.0);
  s.set_state(dc::ServerState::kActive);
  EXPECT_DOUBLE_EQ(pm.power_w(s), 154.0);
}

TEST(PowerModel, RejectsBadParameters) {
  EXPECT_THROW(dc::PowerModel(1.5), std::invalid_argument);
  EXPECT_THROW(dc::PowerModel(0.7, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------- datacenter

TEST(DataCenter, PlacementLifecycle) {
  auto d = make_dc();
  const auto s = d.add_server(4, 2000.0);
  const auto v = d.create_vm(1000.0);
  d.start_booting(0.0, s);
  d.finish_booting(0.0, s);
  d.place_vm(0.0, v, s);
  EXPECT_EQ(d.vm(v).host, s);
  EXPECT_EQ(d.placed_vm_count(), 1u);
  EXPECT_DOUBLE_EQ(d.total_demand_mhz(), 1000.0);
  d.unplace_vm(1.0, v);
  EXPECT_FALSE(d.vm(v).placed());
  EXPECT_DOUBLE_EQ(d.total_demand_mhz(), 0.0);
}

TEST(DataCenter, CannotPlaceOnInactiveServer) {
  auto d = make_dc();
  const auto s = d.add_server(4, 2000.0);
  const auto v = d.create_vm(100.0);
  EXPECT_THROW(d.place_vm(0.0, v, s), std::invalid_argument);
  d.start_booting(0.0, s);
  EXPECT_THROW(d.place_vm(0.0, v, s), std::invalid_argument);
}

TEST(DataCenter, StateTransitionsAndCounters) {
  auto d = make_dc();
  const auto s = d.add_server(4, 2000.0);
  EXPECT_EQ(d.active_server_count(), 0u);
  d.start_booting(0.0, s);
  EXPECT_EQ(d.booting_server_count(), 1u);
  d.finish_booting(10.0, s);
  EXPECT_EQ(d.active_server_count(), 1u);
  EXPECT_EQ(d.total_activations(), 1u);
  d.hibernate(20.0, s);
  EXPECT_EQ(d.active_server_count(), 0u);
  EXPECT_EQ(d.total_hibernations(), 1u);
}

TEST(DataCenter, InvalidTransitionsThrow) {
  auto d = make_dc();
  const auto s = d.add_server(4, 2000.0);
  EXPECT_THROW(d.finish_booting(0.0, s), std::invalid_argument);
  EXPECT_THROW(d.hibernate(0.0, s), std::invalid_argument);
  d.start_booting(0.0, s);
  EXPECT_THROW(d.start_booting(0.0, s), std::invalid_argument);
}

TEST(DataCenter, HibernateRequiresEmptyAndUnreserved) {
  auto d = make_dc();
  const auto s1 = d.add_server(4, 2000.0);
  const auto s2 = d.add_server(4, 2000.0);
  const auto v = d.create_vm(100.0);
  d.start_booting(0.0, s1);
  d.finish_booting(0.0, s1);
  d.start_booting(0.0, s2);
  d.finish_booting(0.0, s2);
  d.place_vm(0.0, v, s1);
  EXPECT_THROW(d.hibernate(1.0, s1), std::invalid_argument);
  d.begin_migration(1.0, v, s2);
  EXPECT_THROW(d.hibernate(1.0, s2), std::invalid_argument);  // reservation
  d.complete_migration(2.0, v);
  d.hibernate(3.0, s1);
  EXPECT_TRUE(d.server(s1).hibernated());
}

TEST(DataCenter, MigrationMovesVmAndReleasesReservation) {
  auto d = make_dc();
  const auto s1 = d.add_server(4, 2000.0);
  const auto s2 = d.add_server(4, 2000.0);
  const auto v = d.create_vm(1000.0);
  for (auto s : {s1, s2}) {
    d.start_booting(0.0, s);
    d.finish_booting(0.0, s);
  }
  d.place_vm(0.0, v, s1);
  d.begin_migration(10.0, v, s2);
  EXPECT_TRUE(d.vm(v).migrating());
  EXPECT_DOUBLE_EQ(d.server(s2).reserved_mhz(), 1000.0);
  EXPECT_EQ(d.vm(v).host, s1);  // still running on the source
  d.complete_migration(40.0, v);
  EXPECT_EQ(d.vm(v).host, s2);
  EXPECT_FALSE(d.vm(v).migrating());
  EXPECT_DOUBLE_EQ(d.server(s2).reserved_mhz(), 0.0);
  EXPECT_DOUBLE_EQ(d.server(s1).demand_mhz(), 0.0);
  EXPECT_EQ(d.total_migrations(), 1u);
}

TEST(DataCenter, ReservationTracksDemandChangeMidFlight) {
  // Regression test: demand changing during the flight must not leak
  // reservation capacity at the destination.
  auto d = make_dc();
  const auto s1 = d.add_server(4, 2000.0);
  const auto s2 = d.add_server(4, 2000.0);
  const auto v = d.create_vm(1000.0);
  for (auto s : {s1, s2}) {
    d.start_booting(0.0, s);
    d.finish_booting(0.0, s);
  }
  d.place_vm(0.0, v, s1);
  d.begin_migration(10.0, v, s2);
  d.set_vm_demand(15.0, v, 400.0);  // trace tick mid-flight
  EXPECT_DOUBLE_EQ(d.server(s2).reserved_mhz(), 400.0);
  d.complete_migration(40.0, v);
  EXPECT_DOUBLE_EQ(d.server(s2).reserved_mhz(), 0.0);
  EXPECT_DOUBLE_EQ(d.server(s2).demand_mhz(), 400.0);
}

TEST(DataCenter, CancelMigrationReleasesReservation) {
  auto d = make_dc();
  const auto s1 = d.add_server(4, 2000.0);
  const auto s2 = d.add_server(4, 2000.0);
  const auto v = d.create_vm(500.0);
  for (auto s : {s1, s2}) {
    d.start_booting(0.0, s);
    d.finish_booting(0.0, s);
  }
  d.place_vm(0.0, v, s1);
  d.begin_migration(1.0, v, s2);
  d.cancel_migration(2.0, v);
  EXPECT_FALSE(d.vm(v).migrating());
  EXPECT_DOUBLE_EQ(d.server(s2).reserved_mhz(), 0.0);
  EXPECT_EQ(d.vm(v).host, s1);
}

TEST(DataCenter, MigrationToHibernatedRejected) {
  auto d = make_dc();
  const auto s1 = d.add_server(4, 2000.0);
  const auto s2 = d.add_server(4, 2000.0);
  const auto v = d.create_vm(500.0);
  d.start_booting(0.0, s1);
  d.finish_booting(0.0, s1);
  d.place_vm(0.0, v, s1);
  EXPECT_THROW(d.begin_migration(1.0, v, s2), std::invalid_argument);
}

TEST(DataCenter, DemandUpdateAdjustsHostAndTotals) {
  auto d = make_dc();
  const auto s = d.add_server(4, 2000.0);
  const auto v = d.create_vm(1000.0);
  d.start_booting(0.0, s);
  d.finish_booting(0.0, s);
  d.place_vm(0.0, v, s);
  d.set_vm_demand(1.0, v, 4000.0);
  EXPECT_DOUBLE_EQ(d.server(s).demand_mhz(), 4000.0);
  EXPECT_DOUBLE_EQ(d.total_demand_mhz(), 4000.0);
  EXPECT_DOUBLE_EQ(d.overall_load(), 0.5);
}

TEST(DataCenter, EnergyIntegrationExact) {
  auto d = make_dc();
  const auto s = d.add_server(6, 2000.0);  // peak 220, idle 154, sleep 3
  // 100 s hibernated.
  d.advance_to(100.0);
  EXPECT_DOUBLE_EQ(d.energy_joules(), 300.0);
  d.start_booting(100.0, s);
  d.advance_to(200.0);  // 100 s at peak power
  EXPECT_DOUBLE_EQ(d.energy_joules(), 300.0 + 22000.0);
  d.finish_booting(200.0, s);
  const auto v = d.create_vm(6000.0);  // u = 0.5 -> 187 W
  d.place_vm(200.0, v, s);
  d.advance_to(300.0);
  EXPECT_DOUBLE_EQ(d.energy_joules(), 300.0 + 22000.0 + 18700.0);
}

TEST(DataCenter, OverloadAccountingTracksVmSeconds) {
  auto d = make_dc();
  const auto s = d.add_server(2, 1000.0);  // capacity 2000
  const auto v1 = d.create_vm(1500.0);
  const auto v2 = d.create_vm(1000.0);
  d.start_booting(0.0, s);
  d.finish_booting(0.0, s);
  d.place_vm(0.0, v1, s);
  d.advance_to(100.0);  // not overloaded
  EXPECT_DOUBLE_EQ(d.overload_vm_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(d.vm_seconds(), 100.0);
  d.place_vm(100.0, v2, s);  // now demand 2500 > 2000, 2 VMs
  d.advance_to(150.0);
  EXPECT_DOUBLE_EQ(d.overload_vm_seconds(), 100.0);  // 2 VMs * 50 s
  EXPECT_DOUBLE_EQ(d.vm_seconds(), 200.0);
  d.unplace_vm(150.0, v2);
  d.advance_to(200.0);
  EXPECT_DOUBLE_EQ(d.overload_vm_seconds(), 100.0);
}

TEST(DataCenter, OverloadEpisodesRecorded) {
  auto d = make_dc();
  const auto s = d.add_server(2, 1000.0);
  const auto v = d.create_vm(1000.0);
  d.start_booting(0.0, s);
  d.finish_booting(0.0, s);
  d.place_vm(0.0, v, s);
  d.set_vm_demand(10.0, v, 2500.0);  // overload starts (granted 0.8)
  d.set_vm_demand(20.0, v, 4000.0);  // deeper (granted 0.5)
  d.set_vm_demand(30.0, v, 1000.0);  // ends
  ASSERT_EQ(d.overload_episodes().size(), 1u);
  const auto& ep = d.overload_episodes().front();
  EXPECT_DOUBLE_EQ(ep.start, 10.0);
  EXPECT_DOUBLE_EQ(ep.duration_s, 20.0);
  EXPECT_DOUBLE_EQ(ep.min_granted_fraction, 0.5);
  EXPECT_EQ(ep.server, s);
}

TEST(DataCenter, ResetAccountingClearsAccumulators) {
  auto d = make_dc();
  d.add_server(4, 2000.0);
  d.advance_to(100.0);
  EXPECT_GT(d.energy_joules(), 0.0);
  d.reset_accounting(100.0);
  EXPECT_DOUBLE_EQ(d.energy_joules(), 0.0);
  EXPECT_DOUBLE_EQ(d.vm_seconds(), 0.0);
  d.advance_to(200.0);
  EXPECT_DOUBLE_EQ(d.energy_joules(), 300.0);
}

TEST(DataCenter, TimeMustBeMonotone) {
  auto d = make_dc();
  d.advance_to(10.0);
  EXPECT_THROW(d.advance_to(5.0), std::invalid_argument);
}

TEST(DataCenter, ServersInStateAndUtilizations) {
  auto d = make_dc();
  const auto s1 = d.add_server(4, 2000.0);
  const auto s2 = d.add_server(4, 2000.0);
  d.add_server(4, 2000.0);
  d.start_booting(0.0, s1);
  d.finish_booting(0.0, s1);
  d.start_booting(0.0, s2);
  EXPECT_EQ(d.servers_in_state(dc::ServerState::kActive).size(), 1u);
  EXPECT_EQ(d.servers_in_state(dc::ServerState::kBooting).size(), 1u);
  EXPECT_EQ(d.servers_in_state(dc::ServerState::kHibernated).size(), 1u);
  const auto v = d.create_vm(4000.0);
  d.place_vm(0.0, v, s1);
  const auto utils = d.active_utilizations();
  ASSERT_EQ(utils.size(), 1u);
  EXPECT_DOUBLE_EQ(utils[0], 0.5);
}

TEST(DataCenter, TotalPowerMaintainedIncrementally) {
  auto d = make_dc();
  const auto s1 = d.add_server(6, 2000.0);
  const auto s2 = d.add_server(6, 2000.0);
  EXPECT_DOUBLE_EQ(d.total_power_w(), 6.0);  // two sleepers
  d.start_booting(0.0, s1);
  EXPECT_DOUBLE_EQ(d.total_power_w(), 220.0 + 3.0);
  d.finish_booting(0.0, s1);
  EXPECT_DOUBLE_EQ(d.total_power_w(), 154.0 + 3.0);
  const auto v = d.create_vm(6000.0);
  d.place_vm(0.0, v, s1);
  EXPECT_DOUBLE_EQ(d.total_power_w(), 187.0 + 3.0);
  (void)s2;
}

TEST(DataCenter, PerVmOverloadAttribution) {
  auto d = make_dc();
  const auto s = d.add_server(2, 1000.0);  // capacity 2000
  d.start_booting(0.0, s);
  d.finish_booting(0.0, s);
  const auto v1 = d.create_vm(1500.0);
  const auto v2 = d.create_vm(1000.0);
  d.place_vm(0.0, v1, s);
  EXPECT_DOUBLE_EQ(d.vm_overload_seconds(v1, 50.0), 0.0);
  d.place_vm(100.0, v2, s);  // overload starts
  EXPECT_DOUBLE_EQ(d.vm_overload_seconds(v1, 130.0), 30.0);
  EXPECT_DOUBLE_EQ(d.vm_overload_seconds(v2, 130.0), 30.0);
  d.unplace_vm(150.0, v2);  // overload ends; v2 leaves with 50 s
  EXPECT_DOUBLE_EQ(d.vm_overload_seconds(v2, 500.0), 50.0);
  EXPECT_DOUBLE_EQ(d.vm_overload_seconds(v1, 500.0), 50.0);
  EXPECT_DOUBLE_EQ(d.server_overload_seconds(s, 500.0), 50.0);
}

TEST(DataCenter, PerVmOverloadSurvivesMigration) {
  auto d = make_dc();
  const auto hot = d.add_server(2, 1000.0);
  const auto cool = d.add_server(8, 2000.0);
  for (auto s : {hot, cool}) {
    d.start_booting(0.0, s);
    d.finish_booting(0.0, s);
  }
  const auto v = d.create_vm(3000.0);  // overloads `hot` on its own
  d.place_vm(0.0, v, hot);
  EXPECT_DOUBLE_EQ(d.vm_overload_seconds(v, 40.0), 40.0);
  d.begin_migration(40.0, v, cool);
  d.complete_migration(60.0, v);  // still on hot until 60 s
  // On `cool` (capacity 16000) it is not shortchanged anymore.
  EXPECT_DOUBLE_EQ(d.vm_overload_seconds(v, 200.0), 60.0);
}

TEST(DataCenter, VmOverloadSumsMatchGlobalAccounting) {
  auto d = make_dc();
  const auto s = d.add_server(2, 1000.0);
  d.start_booting(0.0, s);
  d.finish_booting(0.0, s);
  const auto v1 = d.create_vm(1200.0);
  const auto v2 = d.create_vm(1200.0);
  d.place_vm(0.0, v1, s);
  d.place_vm(10.0, v2, s);           // overloaded from t=10
  d.set_vm_demand(30.0, v2, 100.0);  // back under capacity
  d.advance_to(100.0);
  const double per_vm =
      d.vm_overload_seconds(v1, 100.0) + d.vm_overload_seconds(v2, 100.0);
  EXPECT_DOUBLE_EQ(per_vm, d.overload_vm_seconds());
  EXPECT_DOUBLE_EQ(per_vm, 40.0);  // 2 VMs x 20 s
}

TEST(Server, ChangeDemandClampsAtZero) {
  dc::ServerSoA s_soa;
  dc::Server s = s_soa.add(4, 2000.0);
  s.host_vm(0, 100.0, 0.0);
  s.change_demand(-500.0);
  EXPECT_DOUBLE_EQ(s.demand_mhz(), 0.0);
}

TEST(Server, RemoveReservationClampsAtZero) {
  dc::ServerSoA s_soa;
  dc::Server s = s_soa.add(4, 2000.0);
  s.add_reservation(50.0);
  s.remove_reservation(100.0);
  EXPECT_DOUBLE_EQ(s.reserved_mhz(), 0.0);
}

TEST(DataCenter, UnplaceMigratingVmRejected) {
  auto d = make_dc();
  const auto s1 = d.add_server(4, 2000.0);
  const auto s2 = d.add_server(4, 2000.0);
  for (auto s : {s1, s2}) {
    d.start_booting(0.0, s);
    d.finish_booting(0.0, s);
  }
  const auto v = d.create_vm(100.0);
  d.place_vm(0.0, v, s1);
  d.begin_migration(1.0, v, s2);
  EXPECT_THROW(d.unplace_vm(2.0, v), std::invalid_argument);
  d.cancel_migration(2.0, v);
  EXPECT_NO_THROW(d.unplace_vm(3.0, v));
}

TEST(DataCenter, MigrationToSelfRejected) {
  auto d = make_dc();
  const auto s = d.add_server(4, 2000.0);
  d.start_booting(0.0, s);
  d.finish_booting(0.0, s);
  const auto v = d.create_vm(100.0);
  d.place_vm(0.0, v, s);
  EXPECT_THROW(d.begin_migration(1.0, v, s), std::invalid_argument);
}

TEST(DataCenter, CreateVmValidation) {
  auto d = make_dc();
  EXPECT_THROW(d.create_vm(-1.0), std::invalid_argument);
  EXPECT_THROW(d.create_vm(1.0, -1.0), std::invalid_argument);
}

// --------------------------------------------------------------- fail-stop

TEST(DataCenter, FailServerOrphansVmsAndGoesDark) {
  auto d = make_dc();
  const auto s = d.add_server(6, 2000.0);
  const auto a = d.create_vm(1000.0);
  const auto b = d.create_vm(2000.0);
  d.start_booting(0.0, s);
  d.finish_booting(0.0, s);
  d.place_vm(0.0, a, s);
  d.place_vm(0.0, b, s);

  const auto orphans = d.fail_server(10.0, s);
  EXPECT_EQ(orphans, (std::vector<dc::VmId>{a, b}));
  EXPECT_TRUE(d.server(s).failed());
  EXPECT_EQ(d.failed_server_count(), 1u);
  EXPECT_EQ(d.total_failures(), 1u);
  EXPECT_EQ(d.active_server_count(), 0u);
  EXPECT_EQ(d.placed_vm_count(), 0u);
  EXPECT_FALSE(d.vm(a).placed());
  EXPECT_FALSE(d.vm(b).placed());
  EXPECT_DOUBLE_EQ(d.total_demand_mhz(), 0.0);

  // A dark server draws nothing: no energy accrues while it is down.
  const double at_failure = d.energy_joules();
  d.advance_to(1000.0);
  EXPECT_DOUBLE_EQ(d.energy_joules(), at_failure);

  d.repair_server(1000.0, s);
  EXPECT_TRUE(d.server(s).hibernated());
  EXPECT_EQ(d.failed_server_count(), 0u);
  EXPECT_EQ(d.total_repairs(), 1u);
}

TEST(DataCenter, FailServerWhileBooting) {
  auto d = make_dc();
  const auto s = d.add_server(4, 2000.0);
  d.start_booting(0.0, s);
  const auto orphans = d.fail_server(5.0, s);
  EXPECT_TRUE(orphans.empty());
  EXPECT_EQ(d.booting_server_count(), 0u);
  EXPECT_TRUE(d.server(s).failed());
  // A failed server cannot host, boot, or hibernate.
  const auto v = d.create_vm(100.0);
  EXPECT_THROW(d.place_vm(6.0, v, s), std::invalid_argument);
  EXPECT_THROW(d.start_booting(6.0, s), std::invalid_argument);
  EXPECT_THROW(d.hibernate(6.0, s), std::invalid_argument);
}

TEST(DataCenter, FailRepairPreconditions) {
  auto d = make_dc();
  const auto s = d.add_server(4, 2000.0);
  EXPECT_THROW(d.repair_server(0.0, s), std::invalid_argument);  // not failed
  d.fail_server(0.0, s);
  EXPECT_THROW(d.fail_server(1.0, s), std::invalid_argument);  // already failed
  d.repair_server(2.0, s);
  EXPECT_TRUE(d.server(s).hibernated());
}

TEST(DataCenter, FailServerRejectsPendingMigrations) {
  auto d = make_dc();
  const auto source = d.add_server(6, 2000.0);
  const auto dest = d.add_server(6, 2000.0);
  for (auto s : {source, dest}) {
    d.start_booting(0.0, s);
    d.finish_booting(0.0, s);
  }
  const auto v = d.create_vm(1000.0);
  d.place_vm(0.0, v, source);
  d.begin_migration(1.0, v, dest);
  // Both endpoints refuse to fail-stop while the flight is open: the
  // controller must roll the migration back first.
  EXPECT_THROW(d.fail_server(2.0, source), std::invalid_argument);
  EXPECT_THROW(d.fail_server(2.0, dest), std::invalid_argument);
  d.cancel_migration(3.0, v);
  const auto orphans = d.fail_server(4.0, source);
  EXPECT_EQ(orphans, (std::vector<dc::VmId>{v}));
}

TEST(Server, ReservationCountSnapsResidueOnlyWhenCleared) {
  dc::ServerSoA s_soa;
  dc::Server s = s_soa.add(6, 2000.0, 1024.0);
  s.add_reservation(0.1);
  s.add_reservation(0.2);
  EXPECT_EQ(s.reservation_count(), 2u);
  s.remove_reservation(0.2);
  EXPECT_EQ(s.reservation_count(), 1u);
  // The float sum may carry residue while reservations remain open...
  s.remove_reservation(0.1);
  EXPECT_EQ(s.reservation_count(), 0u);
  // ...but clear_reservations wipes both, residue included.
  s.add_reservation(0.3);
  s.clear_reservations();
  EXPECT_EQ(s.reservation_count(), 0u);
  EXPECT_DOUBLE_EQ(s.reserved_mhz(), 0.0);
}
