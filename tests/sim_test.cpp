// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "ecocloud/sim/simulator.hpp"

namespace sim = ecocloud::sim;

TEST(SimTime, UnitHelpers) {
  EXPECT_DOUBLE_EQ(sim::kHour, 3600.0);
  EXPECT_DOUBLE_EQ(sim::hours(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(sim::minutes(5.0), 300.0);
  EXPECT_DOUBLE_EQ(sim::to_hours(5400.0), 1.5);
}

TEST(Simulator, StartsAtZero) {
  sim::Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  sim::Simulator s;
  std::vector<int> order;
  s.schedule_at(20.0, [&] { order.push_back(2); });
  s.schedule_at(10.0, [&] { order.push_back(1); });
  s.schedule_at(30.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 30.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  sim::Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(10.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  sim::Simulator s;
  double fired_at = -1.0;
  s.schedule_at(100.0, [&] {
    s.schedule_after(50.0, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(Simulator, RejectsPastAndNegative) {
  sim::Simulator s;
  s.schedule_at(10.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RejectsEmptyCallback) {
  sim::Simulator s;
  EXPECT_THROW(s.schedule_at(1.0, sim::Simulator::Callback{}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  sim::Simulator s;
  bool fired = false;
  auto handle = s.schedule_at(10.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // double cancel reports false
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, HandleReportsFiredEventNotPending) {
  sim::Simulator s;
  auto handle = s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  sim::Simulator s;
  std::vector<double> fired;
  for (double t : {5.0, 10.0, 15.0, 20.0}) {
    s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  s.run_until(12.0);
  EXPECT_EQ(fired, (std::vector<double>{5.0, 10.0}));
  EXPECT_DOUBLE_EQ(s.now(), 12.0);
  s.run_until(20.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_THROW(s.run_until(10.0), std::invalid_argument);
}

TEST(Simulator, RunUntilIncludesEventsAtBoundary) {
  sim::Simulator s;
  bool fired = false;
  s.schedule_at(10.0, [&] { fired = true; });
  s.run_until(10.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  sim::Simulator s;
  std::vector<double> times;
  s.schedule_periodic(10.0, [&] { times.push_back(s.now()); });
  s.run_until(35.0);
  EXPECT_EQ(times, (std::vector<double>{0.0, 10.0, 20.0, 30.0}));
}

TEST(Simulator, PeriodicWithPhase) {
  sim::Simulator s;
  std::vector<double> times;
  s.schedule_periodic(10.0, [&] { times.push_back(s.now()); }, 3.0);
  s.run_until(25.0);
  EXPECT_EQ(times, (std::vector<double>{3.0, 13.0, 23.0}));
}

TEST(Simulator, PeriodicCancelStopsChain) {
  sim::Simulator s;
  int count = 0;
  auto handle = s.schedule_periodic(10.0, [&] { ++count; });
  s.run_until(25.0);
  EXPECT_EQ(count, 3);  // t = 0, 10, 20
  handle.cancel();
  s.run_until(100.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicCancelFromWithinCallback) {
  sim::Simulator s;
  int count = 0;
  sim::EventHandle handle;
  handle = s.schedule_periodic(10.0, [&] {
    if (++count == 2) handle.cancel();
  });
  s.run_until(1000.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicRejectsBadArgs) {
  sim::Simulator s;
  EXPECT_THROW(s.schedule_periodic(0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_periodic(1.0, [] {}, -1.0), std::invalid_argument);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  sim::Simulator s;
  std::vector<int> order;
  s.schedule_at(10.0, [&] {
    order.push_back(1);
    s.schedule_at(10.0, [&] { order.push_back(2); });  // same timestamp
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, ExecutedEventCounter) {
  sim::Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  auto cancelled = s.schedule_at(100.0, [] {});
  cancelled.cancel();
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  sim::Simulator s;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 4096);
    s.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(s.executed_events(), 10000u);
}

TEST(Simulator, PendingEventsAccountsForLazyCancels) {
  sim::Simulator s;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 5; ++i) handles.push_back(s.schedule_at(10.0 + i, [] {}));
  EXPECT_EQ(s.pending_events(), 5u);
  // Cancellation is lazy: the records stay queued (and counted) until the
  // heap pops them, but they never execute.
  handles[1].cancel();
  handles[3].cancel();
  EXPECT_EQ(s.pending_events(), 5u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.executed_events(), 3u);
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  sim::Simulator s;
  int count = 0;
  auto handle = s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  s.run_until(1.5);
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // already fired: reports false...
  EXPECT_EQ(s.pending_events(), 1u);  // ...and cannot touch the live count
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicCancelInsideCallbackReleasesChain) {
  sim::Simulator s;
  int count = 0;
  sim::EventHandle handle;
  handle = s.schedule_periodic(10.0, [&] {
    if (++count == 3) handle.cancel();
  });
  s.run_until(21.0);
  EXPECT_EQ(count, 3);
  // The chain re-arms itself each firing; cancelling from inside the
  // callback must also drop the successor that was just scheduled.
  EXPECT_EQ(s.pending_events(), 0u);
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, CancelledPeriodicDoesNotLeakPendingEvents) {
  sim::Simulator s;
  auto periodic = s.schedule_periodic(5.0, [] {});
  auto one_shot = s.schedule_at(100.0, [] {});
  s.run_until(17.0);
  EXPECT_EQ(s.pending_events(), 2u);  // next periodic tick + the one-shot
  periodic.cancel();
  EXPECT_EQ(s.pending_events(), 2u);  // the dead tick drops when popped
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(one_shot.pending());
}

TEST(Simulator, StaleHandleAfterSlotReuseStaysDead) {
  sim::Simulator s;
  int first_fired = 0;
  int second_fired = 0;
  // The only event in a fresh simulator occupies the first slab slot; once
  // it fires, the slot returns to the free list.
  auto stale = s.schedule_at(1.0, [&] { ++first_fired; });
  s.run();
  EXPECT_EQ(first_fired, 1);
  // The next event reuses that slot under a bumped generation. The old
  // handle must keep reporting dead instead of aliasing the new occupant.
  auto fresh = s.schedule_at(2.0, [&] { ++second_fired; });
  EXPECT_FALSE(stale.pending());
  EXPECT_FALSE(stale.cancel());
  EXPECT_TRUE(fresh.pending());
  s.run();
  EXPECT_EQ(second_fired, 1);
}

TEST(Simulator, StaleHandleAfterCancelledSlotReuseStaysDead) {
  sim::Simulator s;
  auto stale = s.schedule_at(1.0, [] {});
  stale.cancel();
  s.run();  // drains the cancelled entry, releasing the slot
  bool fired = false;
  auto fresh = s.schedule_at(2.0, [&] { fired = true; });
  EXPECT_FALSE(stale.pending());
  EXPECT_FALSE(stale.cancel());
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(fresh.pending());
}

TEST(Simulator, DefaultConstructedHandleIsInert) {
  sim::EventHandle handle;
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulator, PeriodicChainsAndOneShotsInterleaveInGlobalOrder) {
  // Periodic re-arms travel through per-period rings while one-shots and
  // first occurrences go through the heap; the merged pop order must still
  // be exactly (time, scheduling-sequence). Ties at t = 15 and t = 20 pin
  // the FIFO rule across the two structures: one-shots were scheduled
  // during setup (earliest sequence numbers), then re-arms in the order
  // their previous occurrences fired.
  sim::Simulator s;
  std::vector<std::pair<double, char>> fired;
  s.schedule_periodic(10.0, [&] { fired.emplace_back(s.now(), 'a'); });
  s.schedule_periodic(10.0, [&] { fired.emplace_back(s.now(), 'b'); }, 5.0);
  s.schedule_periodic(7.0, [&] { fired.emplace_back(s.now(), 'c'); }, 1.0);
  s.schedule_at(15.0, [&] { fired.emplace_back(s.now(), 'x'); });
  s.schedule_at(20.0, [&] { fired.emplace_back(s.now(), 'y'); });
  s.run_until(30.0);
  const std::vector<std::pair<double, char>> expected{
      {0.0, 'a'},  {1.0, 'c'},  {5.0, 'b'},  {8.0, 'c'},  {10.0, 'a'},
      {15.0, 'x'}, {15.0, 'b'}, {15.0, 'c'}, {20.0, 'y'}, {20.0, 'a'},
      {22.0, 'c'}, {25.0, 'b'}, {29.0, 'c'}, {30.0, 'a'}};
  EXPECT_EQ(fired, expected);
}

TEST(Simulator, ManyDistinctPeriodsStayCorrectPastRingCapacity) {
  // More distinct periods than the calendar has rings: the overflow chains
  // re-arm through the heap instead. Every chain must still fire on its
  // exact grid.
  sim::Simulator s;
  constexpr int kChains = 12;
  std::vector<int> counts(kChains, 0);
  for (int i = 0; i < kChains; ++i) {
    const double period = 11.0 + i;
    s.schedule_periodic(period, [&counts, i] { ++counts[i]; });
  }
  s.run_until(500.0);
  for (int i = 0; i < kChains; ++i) {
    const double period = 11.0 + i;
    EXPECT_EQ(counts[i], 1 + static_cast<int>(500.0 / period)) << "period " << period;
  }
}

TEST(Simulator, CancelledMidRingEntryIsDroppedLazily) {
  // Cancel a chain whose next occurrence sits behind another entry of the
  // same period's ring; the dead entry must be skipped without disturbing
  // the surviving chain's schedule.
  sim::Simulator s;
  std::vector<double> survivor_times;
  auto doomed = s.schedule_periodic(10.0, [] {});
  s.schedule_periodic(10.0, [&] { survivor_times.push_back(s.now()); }, 2.0);
  s.run_until(25.0);  // both chains are now re-arming through the ring
  doomed.cancel();
  s.run_until(55.0);
  EXPECT_EQ(survivor_times,
            (std::vector<double>{2.0, 12.0, 22.0, 32.0, 42.0, 52.0}));
  EXPECT_FALSE(doomed.pending());
  EXPECT_EQ(s.pending_events(), 1u);  // only the survivor's next tick
}
