// Unit tests for the discrete-event simulation kernel.

#include <gtest/gtest.h>

#include <vector>

#include "ecocloud/sim/simulator.hpp"

namespace sim = ecocloud::sim;

TEST(SimTime, UnitHelpers) {
  EXPECT_DOUBLE_EQ(sim::kHour, 3600.0);
  EXPECT_DOUBLE_EQ(sim::hours(2.0), 7200.0);
  EXPECT_DOUBLE_EQ(sim::minutes(5.0), 300.0);
  EXPECT_DOUBLE_EQ(sim::to_hours(5400.0), 1.5);
}

TEST(Simulator, StartsAtZero) {
  sim::Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  sim::Simulator s;
  std::vector<int> order;
  s.schedule_at(20.0, [&] { order.push_back(2); });
  s.schedule_at(10.0, [&] { order.push_back(1); });
  s.schedule_at(30.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 30.0);
}

TEST(Simulator, SimultaneousEventsFifo) {
  sim::Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(10.0, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  sim::Simulator s;
  double fired_at = -1.0;
  s.schedule_at(100.0, [&] {
    s.schedule_after(50.0, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(Simulator, RejectsPastAndNegative) {
  sim::Simulator s;
  s.schedule_at(10.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RejectsEmptyCallback) {
  sim::Simulator s;
  EXPECT_THROW(s.schedule_at(1.0, sim::Simulator::Callback{}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  sim::Simulator s;
  bool fired = false;
  auto handle = s.schedule_at(10.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // double cancel reports false
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, HandleReportsFiredEventNotPending) {
  sim::Simulator s;
  auto handle = s.schedule_at(1.0, [] {});
  s.run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  sim::Simulator s;
  std::vector<double> fired;
  for (double t : {5.0, 10.0, 15.0, 20.0}) {
    s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  s.run_until(12.0);
  EXPECT_EQ(fired, (std::vector<double>{5.0, 10.0}));
  EXPECT_DOUBLE_EQ(s.now(), 12.0);
  s.run_until(20.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_THROW(s.run_until(10.0), std::invalid_argument);
}

TEST(Simulator, RunUntilIncludesEventsAtBoundary) {
  sim::Simulator s;
  bool fired = false;
  s.schedule_at(10.0, [&] { fired = true; });
  s.run_until(10.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  sim::Simulator s;
  std::vector<double> times;
  s.schedule_periodic(10.0, [&] { times.push_back(s.now()); });
  s.run_until(35.0);
  EXPECT_EQ(times, (std::vector<double>{0.0, 10.0, 20.0, 30.0}));
}

TEST(Simulator, PeriodicWithPhase) {
  sim::Simulator s;
  std::vector<double> times;
  s.schedule_periodic(10.0, [&] { times.push_back(s.now()); }, 3.0);
  s.run_until(25.0);
  EXPECT_EQ(times, (std::vector<double>{3.0, 13.0, 23.0}));
}

TEST(Simulator, PeriodicCancelStopsChain) {
  sim::Simulator s;
  int count = 0;
  auto handle = s.schedule_periodic(10.0, [&] { ++count; });
  s.run_until(25.0);
  EXPECT_EQ(count, 3);  // t = 0, 10, 20
  handle.cancel();
  s.run_until(100.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicCancelFromWithinCallback) {
  sim::Simulator s;
  int count = 0;
  sim::EventHandle handle;
  handle = s.schedule_periodic(10.0, [&] {
    if (++count == 2) handle.cancel();
  });
  s.run_until(1000.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicRejectsBadArgs) {
  sim::Simulator s;
  EXPECT_THROW(s.schedule_periodic(0.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_periodic(1.0, [] {}, -1.0), std::invalid_argument);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  sim::Simulator s;
  std::vector<int> order;
  s.schedule_at(10.0, [&] {
    order.push_back(1);
    s.schedule_at(10.0, [&] { order.push_back(2); });  // same timestamp
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, ExecutedEventCounter) {
  sim::Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  auto cancelled = s.schedule_at(100.0, [] {});
  cancelled.cancel();
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(Simulator, ManyEventsStressOrdering) {
  sim::Simulator s;
  double last = -1.0;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 4096);
    s.schedule_at(t, [&, t] {
      if (t < last) monotone = false;
      last = t;
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(s.executed_events(), 10000u);
}

TEST(Simulator, PendingEventsAccountsForLazyCancels) {
  sim::Simulator s;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 5; ++i) handles.push_back(s.schedule_at(10.0 + i, [] {}));
  EXPECT_EQ(s.pending_events(), 5u);
  // Cancellation is lazy: the records stay queued (and counted) until the
  // heap pops them, but they never execute.
  handles[1].cancel();
  handles[3].cancel();
  EXPECT_EQ(s.pending_events(), 5u);
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.executed_events(), 3u);
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  sim::Simulator s;
  int count = 0;
  auto handle = s.schedule_at(1.0, [&] { ++count; });
  s.schedule_at(2.0, [&] { ++count; });
  s.run_until(1.5);
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // already fired: reports false...
  EXPECT_EQ(s.pending_events(), 1u);  // ...and cannot touch the live count
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Simulator, PeriodicCancelInsideCallbackReleasesChain) {
  sim::Simulator s;
  int count = 0;
  sim::EventHandle handle;
  handle = s.schedule_periodic(10.0, [&] {
    if (++count == 3) handle.cancel();
  });
  s.run_until(21.0);
  EXPECT_EQ(count, 3);
  // The chain re-arms itself each firing; cancelling from inside the
  // callback must also drop the successor that was just scheduled.
  EXPECT_EQ(s.pending_events(), 0u);
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, CancelledPeriodicDoesNotLeakPendingEvents) {
  sim::Simulator s;
  auto periodic = s.schedule_periodic(5.0, [] {});
  auto one_shot = s.schedule_at(100.0, [] {});
  s.run_until(17.0);
  EXPECT_EQ(s.pending_events(), 2u);  // next periodic tick + the one-shot
  periodic.cancel();
  EXPECT_EQ(s.pending_events(), 2u);  // the dead tick drops when popped
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(one_shot.pending());
}
