// Tests for ecocloud::par — the deterministic sharded parallel engine.
//
// The two load-bearing properties:
//  * K=1 sharded mode is BIT-IDENTICAL to the single-threaded engine
//    (same event CSV bytes, same samples, same aggregate totals);
//  * for fixed K, output is bit-identical on 1, 2, or 8 worker threads.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/par/event_merge.hpp"
#include "ecocloud/par/partition.hpp"
#include "ecocloud/par/sharded_runner.hpp"
#include "ecocloud/scenario/scenario.hpp"

using namespace ecocloud;

namespace {

scenario::DailyConfig small_config() {
  scenario::DailyConfig config;
  config.fleet.num_servers = 48;
  config.num_vms = 600;
  config.horizon_s = 3.0 * sim::kHour;
  config.warmup_s = 0.5 * sim::kHour;
  config.seed = 7;
  return config;
}

scenario::DailyConfig faulted_config() {
  auto config = small_config();
  config.faults.server_mtbf_s = 2.0 * sim::kHour;
  config.faults.server_mttr_s = 600.0;
  config.faults.migration_abort_prob = 0.05;
  return config;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "par_test_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string events_csv(const par::ShardedDailyRun& run) {
  std::ostringstream out;
  run.write_events_csv(out);
  return out.str();
}

void expect_samples_identical(const std::vector<metrics::Sample>& a,
                              const std::vector<metrics::Sample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].active_servers, b[i].active_servers);
    EXPECT_EQ(a[i].booting_servers, b[i].booting_servers);
    EXPECT_EQ(a[i].overall_load, b[i].overall_load);
    EXPECT_EQ(a[i].power_w, b[i].power_w);
    EXPECT_EQ(a[i].overload_percent, b[i].overload_percent);
    EXPECT_EQ(a[i].window_energy_j, b[i].window_energy_j);
    EXPECT_EQ(a[i].window_vm_seconds, b[i].window_vm_seconds);
    EXPECT_EQ(a[i].window_overload_vm_seconds,
              b[i].window_overload_vm_seconds);
  }
}

}  // namespace

// ----------------------------------------------------------------- partition

TEST(ShardPlan, RoundTripsServerIds) {
  for (const std::size_t k : {1u, 3u, 5u}) {
    const par::ShardPlan plan(k, 48, 600);
    std::size_t covered = 0;
    for (std::size_t shard = 0; shard < k; ++shard) {
      covered += plan.servers_in(shard);
    }
    EXPECT_EQ(covered, 48u);
    for (dc::ServerId g = 0; g < 48; ++g) {
      const std::size_t shard = plan.shard_of_server(g);
      EXPECT_LT(shard, k);
      const dc::ServerId local = plan.local_server(g);
      EXPECT_LT(local, plan.servers_in(shard));
      EXPECT_EQ(plan.global_server(shard, local), g);
    }
  }
}

TEST(ShardPlan, IsIdentityForOneShard) {
  const par::ShardPlan plan(1, 16, 100);
  for (dc::ServerId g = 0; g < 16; ++g) {
    EXPECT_EQ(plan.shard_of_server(g), 0u);
    EXPECT_EQ(plan.local_server(g), g);
  }
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(plan.shard_of_trace(i), 0u);
  }
}

TEST(ShardPlan, RejectsMoreShardsThanServers) {
  EXPECT_THROW(par::ShardPlan(10, 4, 100), std::invalid_argument);
}

// 32-bit id boundary: global ids are dc::ServerId/dc::VmId (uint32_t) with
// the max value reserved as the none-sentinel. Plans beyond the id space
// must refuse loudly instead of letting the casts wrap; plans at planet
// scale (1M servers, 15M VMs) and at the exact boundary must work.
TEST(ShardPlan, RejectsPlansBeyondThe32BitIdSpace) {
  const std::size_t id_space = static_cast<std::size_t>(dc::kNoServer);  // 2^32-1

  // Planet scale round-trips fine, including the highest global id.
  const par::ShardPlan planet(8, 1'000'000, 15'000'000);
  const dc::ServerId top = 999'999;
  EXPECT_EQ(planet.global_server(planet.shard_of_server(top),
                                 planet.local_server(top)),
            top);

  // Exactly at the boundary: the largest representable plan (max id is the
  // sentinel, so the last valid count is 2^32-2 ids... i.e. < sentinel).
  const par::ShardPlan boundary(1, id_space - 1, id_space - 1);
  const auto last = static_cast<dc::ServerId>(id_space - 2);
  EXPECT_EQ(boundary.global_server(0, boundary.local_server(last)), last);

  // One past: a fleet whose ids would collide with kNoServer/kNoVm or wrap.
  EXPECT_THROW(par::ShardPlan(1, id_space, 100), std::invalid_argument);
  EXPECT_THROW(par::ShardPlan(1, id_space + 1, 100), std::invalid_argument);
  EXPECT_THROW(par::ShardPlan(1, 100, id_space), std::invalid_argument);

  // A stale local id that would truncate through the 32-bit cast fails
  // instead of minting a bogus global id.
  const par::ShardPlan small(4, 48, 600);
  EXPECT_THROW((void)small.global_server(3, 100), std::invalid_argument);
}

// --------------------------------------------------------- unsupported modes

TEST(ShardedDailyRun, RejectsTopologyAndBadSyncInterval) {
  // Rack topology is the one remaining exclusion (invitations would need
  // cross-shard rack scoping); faults, checkpointing, auditing, and
  // telemetry all compose with sharding now.
  {
    auto config = small_config();
    config.topology = net::TopologyConfig{};
    EXPECT_THROW(par::ShardedDailyRun(config, {.shards = 2}),
                 std::invalid_argument);
  }
  {
    const auto config = small_config();
    EXPECT_THROW(
        par::ShardedDailyRun(config, {.shards = 2, .sync_interval_s = 0.0}),
        std::invalid_argument);
    EXPECT_THROW(
        par::ShardedDailyRun(config, {.shards = 2, .sync_interval_s = -5.0}),
        std::invalid_argument);
  }
}

// -------------------------------------------------- K=1 == single-threaded

TEST(ShardedDailyRun, SingleShardIsBitIdenticalToSingleThreadedEngine) {
  const auto config = small_config();

  scenario::DailyScenario reference(config);
  metrics::EventLog reference_log;
  reference_log.attach(*reference.ecocloud());
  reference.run();

  par::ShardedDailyRun sharded(config, {.shards = 1, .threads = 2});
  sharded.run();

  // Aggregate totals: exact, not approximate.
  const dc::DataCenter& rdc = reference.datacenter();
  EXPECT_EQ(sharded.stats().executed_events,
            reference.simulator().executed_events());
  EXPECT_EQ(sharded.stats().migrations, rdc.total_migrations());
  EXPECT_EQ(sharded.stats().activations, rdc.total_activations());
  EXPECT_EQ(sharded.stats().hibernations, rdc.total_hibernations());
  EXPECT_EQ(sharded.stats().energy_joules, rdc.energy_joules());
  EXPECT_EQ(sharded.stats().low_migrations,
            reference.ecocloud()->low_migrations());
  EXPECT_EQ(sharded.stats().high_migrations,
            reference.ecocloud()->high_migrations());
  EXPECT_EQ(sharded.stats().cross_shard_migrations, 0u);

  // Samples: field-exact.
  expect_samples_identical(sharded.merged_samples(),
                           reference.collector().samples());

  // Event log: byte-exact.
  std::ostringstream reference_csv;
  reference_log.write_csv(reference_csv);
  EXPECT_EQ(events_csv(sharded), reference_csv.str());
}

// ------------------------------------------- thread-count independence (K=4)

TEST(ShardedDailyRun, FixedShardCountIsDeterministicAcrossThreadCounts) {
  const auto config = small_config();

  par::ShardedDailyRun t1(config, {.shards = 4, .threads = 1});
  par::ShardedDailyRun t2(config, {.shards = 4, .threads = 2});
  par::ShardedDailyRun t8(config, {.shards = 4, .threads = 8});
  t1.run();
  t2.run();
  t8.run();

  for (const par::ShardedDailyRun* other : {&t2, &t8}) {
    EXPECT_EQ(t1.stats().executed_events, other->stats().executed_events);
    EXPECT_EQ(t1.stats().migrations, other->stats().migrations);
    EXPECT_EQ(t1.stats().cross_shard_migrations,
              other->stats().cross_shard_migrations);
    EXPECT_EQ(t1.stats().energy_joules, other->stats().energy_joules);
    EXPECT_EQ(t1.stats().stranded_wishes, other->stats().stranded_wishes);
    expect_samples_identical(t1.merged_samples(), other->merged_samples());
    EXPECT_EQ(events_csv(t1), events_csv(*other));
  }
}

// ------------------------------------------------------ cross-shard hand-off

TEST(ShardedDailyRun, HandsOffStrandedMigrationsAcrossShards) {
  // Small shards saturate locally long before the whole fleet does, so a
  // multi-shard run must exercise the barrier hand-off path.
  const auto config = small_config();
  par::ShardedDailyRun run(config, {.shards = 4, .threads = 2});
  run.run();

  EXPECT_GT(run.stats().stranded_wishes, 0u);
  EXPECT_GT(run.stats().cross_shard_migrations, 0u);
  EXPECT_GT(run.stats().barriers, 0u);
  // Cross-shard transfers are counted into the migration totals.
  std::uint64_t intra = 0;
  for (std::size_t k = 0; k < run.num_shards(); ++k) {
    intra += run.shard(k).datacenter().total_migrations();
  }
  EXPECT_EQ(run.stats().migrations,
            intra + run.stats().cross_shard_migrations);
  // Every VM is driven by exactly one shard: total demand conservation at
  // the end (each shard's datacenter only knows its own VMs).
  EXPECT_EQ(run.stats().low_migrations + run.stats().high_migrations,
            run.stats().migrations);
}

TEST(ShardedDailyRun, SameShardCountSameSeedReproduces) {
  const auto config = small_config();
  par::ShardedDailyRun a(config, {.shards = 2, .threads = 2});
  par::ShardedDailyRun b(config, {.shards = 2, .threads = 2});
  a.run();
  b.run();
  EXPECT_EQ(events_csv(a), events_csv(b));
  EXPECT_EQ(a.stats().energy_joules, b.stats().energy_joules);
}

// ------------------------------------------------------- faults under shards

TEST(ShardedDailyRun, SingleShardFaultedMatchesSingleThreadedEngine) {
  // K=1 with fault injection replays the single-threaded faulted run
  // exactly: same crash/repair draws, same redeploys, same bytes.
  const auto config = faulted_config();

  scenario::DailyScenario reference(config);
  metrics::EventLog reference_log;
  reference_log.attach(*reference.ecocloud());
  reference.run();
  ASSERT_NE(reference.fault_injector(), nullptr);

  par::ShardedDailyRun sharded(config, {.shards = 1, .threads = 2});
  ASSERT_NE(sharded.shard(0).fault_injector(), nullptr);
  sharded.run();

  EXPECT_EQ(sharded.stats().executed_events,
            reference.simulator().executed_events());
  EXPECT_EQ(sharded.stats().migrations,
            reference.datacenter().total_migrations());
  EXPECT_EQ(sharded.stats().energy_joules,
            reference.datacenter().energy_joules());
  expect_samples_identical(sharded.merged_samples(),
                           reference.collector().samples());

  std::ostringstream reference_csv;
  reference_log.write_csv(reference_csv);
  EXPECT_EQ(events_csv(sharded), reference_csv.str());
}

TEST(ShardedDailyRun, FaultedRunIsDeterministicAcrossThreadCounts) {
  const auto config = faulted_config();

  par::ShardedDailyRun t1(config, {.shards = 4, .threads = 1});
  par::ShardedDailyRun t2(config, {.shards = 4, .threads = 2});
  par::ShardedDailyRun t8(config, {.shards = 4, .threads = 8});
  t1.run();
  t2.run();
  t8.run();

  // The faulted trajectory actually exercises the failure path.
  std::uint64_t crashes = 0;
  for (std::size_t k = 0; k < t1.num_shards(); ++k) {
    ASSERT_NE(t1.shard(k).fault_injector(), nullptr);
    crashes += t1.shard(k).fault_injector()->stats().crashes();
  }
  EXPECT_GT(crashes, 0u);

  for (const par::ShardedDailyRun* other : {&t2, &t8}) {
    EXPECT_EQ(t1.stats().executed_events, other->stats().executed_events);
    EXPECT_EQ(t1.stats().energy_joules, other->stats().energy_joules);
    expect_samples_identical(t1.merged_samples(), other->merged_samples());
    EXPECT_EQ(events_csv(t1), events_csv(*other));
  }
}

// --------------------------------------------------------- checkpoint/resume

TEST(ShardedDailyRun, CheckpointResumeIsBitIdenticalAcrossThreadCounts) {
  const auto config = small_config();

  // Uninterrupted reference: no checkpointing at all.
  par::ShardedDailyRun reference(config, {.shards = 4, .threads = 2});
  reference.run();

  // Checkpointed run: snapshot every 1800 s of sim time; keep a copy of
  // the FIRST snapshot (later barriers overwrite checkpoint_out).
  auto ckpt_config = config;
  ckpt_config.run.checkpoint_out = temp_path("shard.ckpt");
  ckpt_config.run.checkpoint_every_s = 1800.0;
  const std::string first_snapshot = temp_path("shard_first.ckpt");
  par::ShardedDailyRun checkpointed(ckpt_config, {.shards = 4, .threads = 2});
  std::size_t snapshots = 0;
  checkpointed.on_checkpoint = [&](const std::string& path) {
    if (snapshots++ == 0) {
      std::ofstream out(first_snapshot, std::ios::binary);
      out << slurp(path);
    }
  };
  checkpointed.run();
  ASSERT_GT(snapshots, 1u);
  EXPECT_EQ(checkpointed.stats().checkpoints_written, snapshots);

  // Checkpointing must not perturb the trajectory.
  EXPECT_EQ(events_csv(checkpointed), events_csv(reference));
  EXPECT_EQ(checkpointed.stats().energy_joules,
            reference.stats().energy_joules);

  // Resume the first mid-run snapshot at two other thread counts; both
  // must land byte-identical to the uninterrupted reference.
  for (const std::size_t threads : {1u, 8u}) {
    par::ShardedDailyRun resumed(config, {.shards = 4, .threads = threads});
    resumed.restore_snapshot(first_snapshot);
    ASSERT_TRUE(resumed.resumed());
    resumed.run();
    EXPECT_EQ(events_csv(resumed), events_csv(reference));
    EXPECT_EQ(resumed.stats().energy_joules, reference.stats().energy_joules);
    expect_samples_identical(resumed.merged_samples(),
                             reference.merged_samples());
  }

  std::remove(first_snapshot.c_str());
  std::remove(ckpt_config.run.checkpoint_out.c_str());
}

TEST(ShardedDailyRun, FaultedCheckpointResumeReplaysExactly) {
  // The hard case: snapshots must carry every shard's fault-process RNG
  // and pending repair/redeploy state.
  const auto config = faulted_config();

  par::ShardedDailyRun reference(config, {.shards = 2, .threads = 2});
  reference.run();

  auto ckpt_config = config;
  ckpt_config.run.checkpoint_out = temp_path("faulted.ckpt");
  ckpt_config.run.checkpoint_every_s = 3600.0;
  const std::string snapshot = temp_path("faulted_first.ckpt");
  par::ShardedDailyRun checkpointed(ckpt_config, {.shards = 2, .threads = 2});
  bool captured = false;
  checkpointed.on_checkpoint = [&](const std::string& path) {
    if (!captured) {
      captured = true;
      std::ofstream out(snapshot, std::ios::binary);
      out << slurp(path);
    }
  };
  checkpointed.run();
  ASSERT_TRUE(captured);

  par::ShardedDailyRun resumed(config, {.shards = 2, .threads = 1});
  resumed.restore_snapshot(snapshot);
  resumed.run();
  EXPECT_EQ(events_csv(resumed), events_csv(reference));
  EXPECT_EQ(resumed.stats().energy_joules, reference.stats().energy_joules);

  std::remove(snapshot.c_str());
  std::remove(ckpt_config.run.checkpoint_out.c_str());
}

TEST(ShardedDailyRun, RestoreRejectsDigestMismatch) {
  const auto config = small_config();
  const std::string snapshot = temp_path("digest.ckpt");
  par::ShardedDailyRun source(config, {.shards = 2, .threads = 1});
  source.save_snapshot(snapshot);

  // Different shard count -> different trajectory -> refuse to restore.
  par::ShardedDailyRun wrong_shards(config, {.shards = 4, .threads = 1});
  EXPECT_THROW(wrong_shards.restore_snapshot(snapshot), std::exception);

  // Different sync interval too.
  par::ShardedDailyRun wrong_sync(
      config, {.shards = 2, .threads = 1, .sync_interval_s = 600.0});
  EXPECT_THROW(wrong_sync.restore_snapshot(snapshot), std::exception);

  std::remove(snapshot.c_str());
}

// -------------------------------------------------- epoch-order explorer

TEST(ShardedDailyRun, EpochExecutionOrderCannotChangeTrajectory) {
  // Run K=3 under adversarial epoch interleavings: identity, reversed,
  // and a per-epoch rotation. If any shard peeked at another shard's
  // in-epoch state, some permutation would diverge.
  const auto config = small_config();

  par::ShardedDailyRun reference(config, {.shards = 3, .threads = 2});
  reference.run();
  const std::string reference_csv = events_csv(reference);

  using Order = std::vector<std::size_t>;
  const std::vector<
      std::function<Order(std::uint64_t, std::size_t)>>
      orders = {
          [](std::uint64_t, std::size_t k) {
            Order order(k);
            for (std::size_t i = 0; i < k; ++i) order[i] = i;
            return order;
          },
          [](std::uint64_t, std::size_t k) {
            Order order(k);
            for (std::size_t i = 0; i < k; ++i) order[i] = k - 1 - i;
            return order;
          },
          [](std::uint64_t epoch, std::size_t k) {
            Order order(k);
            for (std::size_t i = 0; i < k; ++i) {
              order[i] = (i + epoch) % k;
            }
            return order;
          },
      };

  for (const auto& order : orders) {
    par::ShardedDailyRun explored(
        config, {.shards = 3, .threads = 1, .epoch_order = order});
    explored.run();
    EXPECT_EQ(events_csv(explored), reference_csv);
    EXPECT_EQ(explored.stats().energy_joules, reference.stats().energy_joules);
    expect_samples_identical(explored.merged_samples(),
                             reference.merged_samples());
  }
}

TEST(ShardedDailyRun, RejectsInvalidEpochOrder) {
  const auto config = small_config();
  // Duplicate index: not a permutation.
  par::ShardedDailyRun run(
      config, {.shards = 2, .threads = 1, .epoch_order = [](std::uint64_t,
                                                            std::size_t) {
                 return std::vector<std::size_t>{0, 0};
               }});
  EXPECT_THROW(run.run(), std::exception);
}

// ------------------------------------------------------------ barrier audits

TEST(ShardedDailyRun, BarrierAuditsPassAndDoNotPerturbTheTrajectory) {
  const auto config = small_config();

  par::ShardedDailyRun reference(config, {.shards = 4, .threads = 2});
  reference.run();

  auto audited_config = config;
  audited_config.run.audit_every_s = 600.0;
  audited_config.run.audit_action = "log";
  par::ShardedDailyRun audited(audited_config, {.shards = 4, .threads = 2});
  audited.run();

  EXPECT_GT(audited.stats().audits_run, 0u);
  EXPECT_EQ(audited.stats().audit_failures, 0u);
  EXPECT_EQ(events_csv(audited), events_csv(reference));
  EXPECT_EQ(audited.stats().energy_joules, reference.stats().energy_joules);
}

TEST(ShardedDailyRun, FaultedBarrierAuditsStayClean) {
  // Crash/repair churn plus cross-shard hand-offs must not trip the
  // cross-shard ownership or conservation checks.
  auto config = faulted_config();
  config.run.audit_every_s = 900.0;
  config.run.audit_action = "log";
  par::ShardedDailyRun run(config, {.shards = 4, .threads = 2});
  run.run();
  EXPECT_GT(run.stats().audits_run, 0u);
  EXPECT_EQ(run.stats().audit_failures, 0u);
}

// ---------------------------------------------------------- event-log merge

TEST(EventMerge, EqualTimestampsKeepStreamOrder) {
  using metrics::Event;
  using metrics::EventKind;
  // Three streams, all rows at the same instant: the merge must emit
  // stream 0's rows first, then stream 1's, then stream 2's, keeping the
  // within-stream order — the tie-break that makes shard stitching a pure
  // function of (time, shard index).
  const std::vector<Event> s0 = {
      {100.0, EventKind::kAssignment, 0, 10, false},
      {100.0, EventKind::kAssignment, 1, 11, false}};
  const std::vector<Event> s1 = {
      {100.0, EventKind::kActivation, dc::kNoVm, 20, false}};
  const std::vector<Event> s2 = {
      {100.0, EventKind::kMigrationStart, 2, 30, true}};
  const std::vector<par::EventStream> streams = {
      {&s0, {}}, {&s1, {}}, {&s2, {}}};

  const auto merged = par::merge_event_streams(streams);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].server, 10u);
  EXPECT_EQ(merged[1].server, 11u);
  EXPECT_EQ(merged[2].server, 20u);
  EXPECT_EQ(merged[3].server, 30u);

  // Deterministic: merging twice yields the same rows.
  const auto again = par::merge_event_streams(streams);
  ASSERT_EQ(again.size(), merged.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(again[i].time, merged[i].time);
    EXPECT_EQ(again[i].kind, merged[i].kind);
    EXPECT_EQ(again[i].server, merged[i].server);
  }
}

TEST(EventMerge, InterleavesStrictlyByTimeAcrossStreams) {
  using metrics::Event;
  using metrics::EventKind;
  const std::vector<Event> s0 = {{1.0, EventKind::kAssignment, 0, 0, false},
                                 {5.0, EventKind::kAssignment, 1, 0, false}};
  const std::vector<Event> s1 = {{2.0, EventKind::kAssignment, 2, 1, false},
                                 {4.0, EventKind::kAssignment, 3, 1, false}};
  const auto merged = par::merge_event_streams({{&s0, {}}, {&s1, {}}});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].time, 1.0);
  EXPECT_EQ(merged[1].time, 2.0);
  EXPECT_EQ(merged[2].time, 4.0);
  EXPECT_EQ(merged[3].time, 5.0);
}

TEST(EventMerge, TranslationRoundTripsLocalIdsThroughShardPlan) {
  using metrics::Event;
  using metrics::EventKind;
  constexpr std::size_t kShards = 3;
  const par::ShardPlan plan(kShards, 12, 30);

  // Each shard stream holds LOCAL ids; translation lifts them to global
  // via the plan. Round-trip: the merged global ids map back to exactly
  // the (shard, local) pair that emitted them.
  std::vector<std::vector<Event>> local(kShards);
  for (std::size_t k = 0; k < kShards; ++k) {
    for (dc::ServerId s = 0; s < plan.servers_in(k); ++s) {
      local[k].push_back(
          {static_cast<double>(k), EventKind::kActivation, dc::kNoVm, s,
           false});
    }
  }
  std::vector<par::EventStream> streams;
  for (std::size_t k = 0; k < kShards; ++k) {
    streams.push_back({&local[k], [&plan, k](const Event& raw) {
                         Event e = raw;
                         e.server = plan.global_server(k, raw.server);
                         return e;
                       }});
  }

  const auto merged = par::merge_event_streams(streams);
  ASSERT_EQ(merged.size(), 12u);
  std::vector<bool> seen(12, false);
  for (const Event& e : merged) {
    const std::size_t k = plan.shard_of_server(e.server);
    EXPECT_EQ(static_cast<double>(k), e.time);  // emitted by that shard
    EXPECT_EQ(plan.global_server(k, plan.local_server(e.server)), e.server);
    EXPECT_FALSE(seen[e.server]);
    seen[e.server] = true;
  }
}

TEST(EventMerge, CsvMatchesEventLogFormat) {
  using metrics::Event;
  using metrics::EventKind;
  // -1 sentinels and precision must match EventLog::write_csv exactly;
  // the K=1 bit-identity tests depend on it, pin it directly too.
  const std::vector<Event> rows = {
      {0.125, EventKind::kActivation, dc::kNoVm, 3, false},
      {7.5, EventKind::kMigrationStart, 42, 1, true}};
  std::ostringstream out;
  par::write_merged_events_csv(out, rows);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time_s,kind,vm,server,is_high"), std::string::npos);
  EXPECT_NE(csv.find(",-1,3,"), std::string::npos);  // kNoVm -> -1
  EXPECT_NE(csv.find(",42,1,1"), std::string::npos);
}

// ---------------------------------------------- per-shard streaming banks

TEST(ShardedDailyRun, StreamingBanksMatchMaterializedSharded) {
  // The tentpole equivalence (DESIGN.md §17): a sharded run driven from
  // per-shard streaming cursor banks is bit-identical to the same run
  // driven from the shared materialized TraceSet. small_config at K=4
  // produces cross-shard hand-offs, so the adoption path (copying a row's
  // cursor from its owner bank at a barrier) is genuinely exercised.
  const auto config = small_config();
  par::ShardedDailyRun materialized(config, {.shards = 4, .threads = 2});
  materialized.run();
  ASSERT_GT(materialized.stats().cross_shard_migrations, 0u);

  auto streaming_config = config;
  streaming_config.streaming_traces = true;
  par::ShardedDailyRun streaming(streaming_config, {.shards = 4, .threads = 2});
  for (std::size_t k = 0; k < streaming.num_shards(); ++k) {
    // streaming_traces is honored — never silently downgraded to a
    // materialized TraceSet behind the operator's back.
    ASSERT_NE(streaming.shard(k).streaming_bank(), nullptr);
  }
  streaming.run();

  EXPECT_EQ(events_csv(streaming), events_csv(materialized));
  EXPECT_EQ(streaming.stats().energy_joules,
            materialized.stats().energy_joules);
  EXPECT_EQ(streaming.stats().cross_shard_migrations,
            materialized.stats().cross_shard_migrations);
  expect_samples_identical(streaming.merged_samples(),
                           materialized.merged_samples());
}

TEST(ShardedDailyRun, StreamingSingleShardMatchesSingleThreadedStreaming) {
  auto config = small_config();
  config.streaming_traces = true;

  scenario::DailyScenario reference(config);
  metrics::EventLog reference_log;
  reference_log.attach(*reference.ecocloud());
  reference.run();

  par::ShardedDailyRun sharded(config, {.shards = 1, .threads = 1});
  ASSERT_NE(sharded.shard(0).streaming_bank(), nullptr);
  sharded.run();

  std::ostringstream reference_csv;
  reference_log.write_csv(reference_csv);
  EXPECT_EQ(events_csv(sharded), reference_csv.str());
  EXPECT_EQ(sharded.stats().energy_joules,
            reference.datacenter().energy_joules());
  expect_samples_identical(sharded.merged_samples(),
                           reference.collector().samples());
}

TEST(ShardedDailyRun, FaultedStreamingMatchesFaultedMaterialized) {
  // Crash/repair churn plus redeploys on top of the cursor banks: the
  // fault draws live on RNG stream 7, trace generation on the shared
  // stream, so the trajectories must still agree byte for byte.
  const auto config = faulted_config();
  par::ShardedDailyRun materialized(config, {.shards = 4, .threads = 2});
  materialized.run();

  auto streaming_config = config;
  streaming_config.streaming_traces = true;
  par::ShardedDailyRun streaming(streaming_config, {.shards = 4, .threads = 2});
  streaming.run();

  EXPECT_EQ(events_csv(streaming), events_csv(materialized));
  EXPECT_EQ(streaming.stats().energy_joules,
            materialized.stats().energy_joules);
  expect_samples_identical(streaming.merged_samples(),
                           materialized.merged_samples());
}

TEST(ShardedDailyRun, StreamingCheckpointResumeReplaysExactly) {
  // Restore path: banks regenerate at step 0, fast-forward to the snapshot
  // barrier, and the coordinator re-adopts every cross-shard row from its
  // owner bank before the run continues.
  auto config = small_config();
  config.streaming_traces = true;

  par::ShardedDailyRun reference(config, {.shards = 4, .threads = 2});
  reference.run();
  // The resume below is only a real test if rows cross shards.
  ASSERT_GT(reference.stats().cross_shard_migrations, 0u);

  auto ckpt_config = config;
  ckpt_config.run.checkpoint_out = temp_path("stream.ckpt");
  ckpt_config.run.checkpoint_every_s = 1800.0;
  const std::string first_snapshot = temp_path("stream_first.ckpt");
  const std::string late_snapshot = temp_path("stream_late.ckpt");
  par::ShardedDailyRun checkpointed(ckpt_config, {.shards = 4, .threads = 2});
  std::size_t snapshots = 0;
  checkpointed.on_checkpoint = [&](const std::string& path) {
    // Keep the first snapshot (few adopted rows) and the latest one (many).
    std::ofstream out(snapshots == 0 ? first_snapshot : late_snapshot,
                      std::ios::binary);
    out << slurp(path);
    ++snapshots;
  };
  checkpointed.run();
  ASSERT_GT(snapshots, 1u);
  EXPECT_EQ(events_csv(checkpointed), events_csv(reference));

  for (const std::string& snapshot : {first_snapshot, late_snapshot}) {
    par::ShardedDailyRun resumed(config, {.shards = 4, .threads = 1});
    resumed.restore_snapshot(snapshot);
    ASSERT_TRUE(resumed.resumed());
    resumed.run();
    EXPECT_EQ(events_csv(resumed), events_csv(reference));
    EXPECT_EQ(resumed.stats().energy_joules, reference.stats().energy_joules);
    expect_samples_identical(resumed.merged_samples(),
                             reference.merged_samples());
  }

  std::remove(first_snapshot.c_str());
  std::remove(late_snapshot.c_str());
  std::remove(ckpt_config.run.checkpoint_out.c_str());
}

TEST(ShardedDailyRun, ShardedSnapshotsArePortableAcrossTraceMemoryModes) {
  // Mirror of the single-threaded cross-mode test (ckpt_test): a snapshot
  // written by a materialized K=2 run restores into a streaming K=2 run —
  // the banks carry no snapshot state and streaming_traces is deliberately
  // not in the digest.
  const auto config = small_config();
  par::ShardedDailyRun reference(config, {.shards = 2, .threads = 2});
  reference.run();

  auto ckpt_config = config;
  ckpt_config.run.checkpoint_out = temp_path("xmode_shard.ckpt");
  ckpt_config.run.checkpoint_every_s = 1800.0;
  const std::string snapshot = temp_path("xmode_shard_first.ckpt");
  par::ShardedDailyRun checkpointed(ckpt_config, {.shards = 2, .threads = 2});
  bool captured = false;
  checkpointed.on_checkpoint = [&](const std::string& path) {
    if (!captured) {
      captured = true;
      std::ofstream out(snapshot, std::ios::binary);
      out << slurp(path);
    }
  };
  checkpointed.run();
  ASSERT_TRUE(captured);

  auto streaming_config = config;
  streaming_config.streaming_traces = true;
  par::ShardedDailyRun resumed(streaming_config, {.shards = 2, .threads = 1});
  resumed.restore_snapshot(snapshot);
  ASSERT_TRUE(resumed.resumed());
  resumed.run();
  EXPECT_EQ(events_csv(resumed), events_csv(reference));
  EXPECT_EQ(resumed.stats().energy_joules, reference.stats().energy_joules);

  std::remove(snapshot.c_str());
  std::remove(ckpt_config.run.checkpoint_out.c_str());
}
