// Tests for ecocloud::par — the deterministic sharded parallel engine.
//
// The two load-bearing properties:
//  * K=1 sharded mode is BIT-IDENTICAL to the single-threaded engine
//    (same event CSV bytes, same samples, same aggregate totals);
//  * for fixed K, output is bit-identical on 1, 2, or 8 worker threads.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/par/partition.hpp"
#include "ecocloud/par/sharded_runner.hpp"
#include "ecocloud/scenario/scenario.hpp"

using namespace ecocloud;

namespace {

scenario::DailyConfig small_config() {
  scenario::DailyConfig config;
  config.fleet.num_servers = 48;
  config.num_vms = 600;
  config.horizon_s = 3.0 * sim::kHour;
  config.warmup_s = 0.5 * sim::kHour;
  config.seed = 7;
  return config;
}

std::string events_csv(const par::ShardedDailyRun& run) {
  std::ostringstream out;
  run.write_events_csv(out);
  return out.str();
}

void expect_samples_identical(const std::vector<metrics::Sample>& a,
                              const std::vector<metrics::Sample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].active_servers, b[i].active_servers);
    EXPECT_EQ(a[i].booting_servers, b[i].booting_servers);
    EXPECT_EQ(a[i].overall_load, b[i].overall_load);
    EXPECT_EQ(a[i].power_w, b[i].power_w);
    EXPECT_EQ(a[i].overload_percent, b[i].overload_percent);
    EXPECT_EQ(a[i].window_energy_j, b[i].window_energy_j);
    EXPECT_EQ(a[i].window_vm_seconds, b[i].window_vm_seconds);
    EXPECT_EQ(a[i].window_overload_vm_seconds,
              b[i].window_overload_vm_seconds);
  }
}

}  // namespace

// ----------------------------------------------------------------- partition

TEST(ShardPlan, RoundTripsServerIds) {
  for (const std::size_t k : {1u, 3u, 5u}) {
    const par::ShardPlan plan(k, 48, 600);
    std::size_t covered = 0;
    for (std::size_t shard = 0; shard < k; ++shard) {
      covered += plan.servers_in(shard);
    }
    EXPECT_EQ(covered, 48u);
    for (dc::ServerId g = 0; g < 48; ++g) {
      const std::size_t shard = plan.shard_of_server(g);
      EXPECT_LT(shard, k);
      const dc::ServerId local = plan.local_server(g);
      EXPECT_LT(local, plan.servers_in(shard));
      EXPECT_EQ(plan.global_server(shard, local), g);
    }
  }
}

TEST(ShardPlan, IsIdentityForOneShard) {
  const par::ShardPlan plan(1, 16, 100);
  for (dc::ServerId g = 0; g < 16; ++g) {
    EXPECT_EQ(plan.shard_of_server(g), 0u);
    EXPECT_EQ(plan.local_server(g), g);
  }
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(plan.shard_of_trace(i), 0u);
  }
}

TEST(ShardPlan, RejectsMoreShardsThanServers) {
  EXPECT_THROW(par::ShardPlan(10, 4, 100), std::invalid_argument);
}

// --------------------------------------------------------- unsupported modes

TEST(ShardedDailyRun, RejectsFaultsTopologyAndCheckpointing) {
  {
    auto config = small_config();
    config.faults.server_mtbf_s = 3600.0;
    config.faults.server_mttr_s = 60.0;
    EXPECT_THROW(par::ShardedDailyRun(config, {.shards = 2}),
                 std::invalid_argument);
  }
  {
    auto config = small_config();
    config.topology = net::TopologyConfig{};
    EXPECT_THROW(par::ShardedDailyRun(config, {.shards = 2}),
                 std::invalid_argument);
  }
  {
    auto config = small_config();
    config.run.checkpoint_out = "x.ckpt";
    config.run.checkpoint_every_s = 300.0;
    EXPECT_THROW(par::ShardedDailyRun(config, {.shards = 2}),
                 std::invalid_argument);
  }
}

// -------------------------------------------------- K=1 == single-threaded

TEST(ShardedDailyRun, SingleShardIsBitIdenticalToSingleThreadedEngine) {
  const auto config = small_config();

  scenario::DailyScenario reference(config);
  metrics::EventLog reference_log;
  reference_log.attach(*reference.ecocloud());
  reference.run();

  par::ShardedDailyRun sharded(config, {.shards = 1, .threads = 2});
  sharded.run();

  // Aggregate totals: exact, not approximate.
  const dc::DataCenter& rdc = reference.datacenter();
  EXPECT_EQ(sharded.stats().executed_events,
            reference.simulator().executed_events());
  EXPECT_EQ(sharded.stats().migrations, rdc.total_migrations());
  EXPECT_EQ(sharded.stats().activations, rdc.total_activations());
  EXPECT_EQ(sharded.stats().hibernations, rdc.total_hibernations());
  EXPECT_EQ(sharded.stats().energy_joules, rdc.energy_joules());
  EXPECT_EQ(sharded.stats().low_migrations,
            reference.ecocloud()->low_migrations());
  EXPECT_EQ(sharded.stats().high_migrations,
            reference.ecocloud()->high_migrations());
  EXPECT_EQ(sharded.stats().cross_shard_migrations, 0u);

  // Samples: field-exact.
  expect_samples_identical(sharded.merged_samples(),
                           reference.collector().samples());

  // Event log: byte-exact.
  std::ostringstream reference_csv;
  reference_log.write_csv(reference_csv);
  EXPECT_EQ(events_csv(sharded), reference_csv.str());
}

// ------------------------------------------- thread-count independence (K=4)

TEST(ShardedDailyRun, FixedShardCountIsDeterministicAcrossThreadCounts) {
  const auto config = small_config();

  par::ShardedDailyRun t1(config, {.shards = 4, .threads = 1});
  par::ShardedDailyRun t2(config, {.shards = 4, .threads = 2});
  par::ShardedDailyRun t8(config, {.shards = 4, .threads = 8});
  t1.run();
  t2.run();
  t8.run();

  for (const par::ShardedDailyRun* other : {&t2, &t8}) {
    EXPECT_EQ(t1.stats().executed_events, other->stats().executed_events);
    EXPECT_EQ(t1.stats().migrations, other->stats().migrations);
    EXPECT_EQ(t1.stats().cross_shard_migrations,
              other->stats().cross_shard_migrations);
    EXPECT_EQ(t1.stats().energy_joules, other->stats().energy_joules);
    EXPECT_EQ(t1.stats().stranded_wishes, other->stats().stranded_wishes);
    expect_samples_identical(t1.merged_samples(), other->merged_samples());
    EXPECT_EQ(events_csv(t1), events_csv(*other));
  }
}

// ------------------------------------------------------ cross-shard hand-off

TEST(ShardedDailyRun, HandsOffStrandedMigrationsAcrossShards) {
  // Small shards saturate locally long before the whole fleet does, so a
  // multi-shard run must exercise the barrier hand-off path.
  const auto config = small_config();
  par::ShardedDailyRun run(config, {.shards = 4, .threads = 2});
  run.run();

  EXPECT_GT(run.stats().stranded_wishes, 0u);
  EXPECT_GT(run.stats().cross_shard_migrations, 0u);
  EXPECT_GT(run.stats().barriers, 0u);
  // Cross-shard transfers are counted into the migration totals.
  std::uint64_t intra = 0;
  for (std::size_t k = 0; k < run.num_shards(); ++k) {
    intra += run.shard(k).datacenter().total_migrations();
  }
  EXPECT_EQ(run.stats().migrations,
            intra + run.stats().cross_shard_migrations);
  // Every VM is driven by exactly one shard: total demand conservation at
  // the end (each shard's datacenter only knows its own VMs).
  EXPECT_EQ(run.stats().low_migrations + run.stats().high_migrations,
            run.stats().migrations);
}

TEST(ShardedDailyRun, SameShardCountSameSeedReproduces) {
  const auto config = small_config();
  par::ShardedDailyRun a(config, {.shards = 2, .threads = 2});
  par::ShardedDailyRun b(config, {.shards = 2, .threads = 2});
  a.run();
  b.run();
  EXPECT_EQ(events_csv(a), events_csv(b));
  EXPECT_EQ(a.stats().energy_joules, b.stats().energy_joules);
}
