#!/usr/bin/env python3
"""Validate the CLI's telemetry outputs.

Checks, with no third-party dependencies:
  * Prometheus text exposition (format 0.0.4): HELP/TYPE comment grammar,
    metric-name and label syntax, numeric sample values, histogram
    bucket/sum/count completeness and cumulative monotonicity.
  * JSON metrics snapshot: well-formed, expected top-level shape.
  * Chrome trace-event JSON: loadable, every event carries the required
    keys for its phase, complete events have non-negative durations, and
    the counter/metadata events are well-formed (Perfetto accepts this).
  * JSONL log: every line is a JSON object with ts_sim/level/component/msg.
  * /progress snapshot: the live plane's run-progress JSON carries the
    documented numeric fields and a well-formed per-shard list.
  * Folded stacks: every line is "domain;phase[;phase...] <micros>".

Exit status 0 on success; prints the first failure and exits 1 otherwise.
"""

import argparse
import json
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One sample line: name{labels} value  (labels optional).
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$")
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
LOG_LEVELS = {"trace", "debug", "info", "warn", "error"}


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_number(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return math.inf if text == "+Inf" else (-math.inf if text == "-Inf" else math.nan)
    try:
        return float(text)
    except ValueError:
        fail(f"bad sample value: {text!r}")


def validate_prometheus(path):
    families = {}   # name -> type
    histograms = {}  # base name -> {"buckets": [(le, v)], "sum": v, "count": v}
    n_samples = 0
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line:
                continue
            where = f"{path}:{lineno}"
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                parts = line.split(" ", 3)
                if len(parts) < 4 or not METRIC_NAME.match(parts[2]):
                    fail(f"{where}: bad comment line: {line!r}")
                if parts[1] == "TYPE":
                    if parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                        fail(f"{where}: bad metric type {parts[3]!r}")
                    if parts[2] in families:
                        fail(f"{where}: duplicate TYPE for {parts[2]}")
                    families[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = SAMPLE.match(line)
            if not m:
                fail(f"{where}: unparseable sample line: {line!r}")
            name, _, labels, value_text = m.groups()
            value = parse_number(value_text)
            n_samples += 1
            label_map = {}
            if labels:
                stripped = LABEL_PAIR.sub("", labels).replace(",", "").strip()
                if stripped:
                    fail(f"{where}: bad label syntax: {labels!r}")
                for lm in LABEL_PAIR.finditer(labels):
                    if not LABEL_NAME.match(lm.group(1)):
                        fail(f"{where}: bad label name {lm.group(1)!r}")
                    label_map[lm.group(1)] = lm.group(2)
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            family_type = families.get(name) or families.get(base)
            if family_type is None:
                fail(f"{where}: sample {name} has no preceding # TYPE")
            if family_type == "histogram":
                # One logical histogram per label set (minus "le"): sharded
                # runs export e.g. {shard="0"} and {shard="1"} instances of
                # the same family, each cumulative on its own.
                series = tuple(sorted(
                    (k, v) for k, v in label_map.items() if k != "le"))
                h = histograms.setdefault(
                    (base, series), {"buckets": [], "sum": None, "count": None})
                if name.endswith("_bucket"):
                    if "le" not in label_map:
                        fail(f"{where}: histogram bucket without le label")
                    h["buckets"].append((parse_number(label_map["le"]), value))
                elif name.endswith("_sum"):
                    h["sum"] = value
                elif name.endswith("_count"):
                    h["count"] = value
                else:
                    fail(f"{where}: unexpected histogram sample {name}")
            elif family_type in ("counter", "gauge"):
                if family_type == "counter" and value < 0:
                    fail(f"{where}: negative counter {name}")
    if n_samples == 0:
        fail(f"{path}: no samples")
    for (base, series), h in histograms.items():
        what = base + (str(dict(series)) if series else "")
        if h["sum"] is None or h["count"] is None:
            fail(f"{what}: histogram missing _sum or _count")
        if not h["buckets"] or not math.isinf(h["buckets"][-1][0]):
            fail(f"{what}: histogram missing +Inf bucket")
        counts = [v for _, v in h["buckets"]]
        if any(b > a for a, b in zip(counts[1:], counts)):
            fail(f"{what}: histogram buckets not cumulative")
        if counts[-1] != h["count"]:
            fail(f"{what}: +Inf bucket != _count")
    print(f"{path}: OK ({n_samples} samples, {len(families)} families, "
          f"{len(histograms)} histograms)")


def validate_metrics_json(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, list) or not metrics:
        fail(f"{path}: missing or empty 'metrics' array")
    for m in metrics:
        for key in ("name", "type", "series"):
            if key not in m:
                fail(f"{path}: metric missing {key!r}: {m}")
    print(f"{path}: OK ({len(metrics)} metrics)")


def validate_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty traceEvents")
    phases = {}
    for e in events:
        ph = e.get("ph")
        phases[ph] = phases.get(ph, 0) + 1
        if ph in ("X", "i", "C"):
            for key in ("name", "ts", "pid"):
                if key not in e:
                    fail(f"{path}: {ph} event missing {key!r}: {e}")
        if ph == "X":
            if e.get("dur", -1) < 0:
                fail(f"{path}: X event with negative duration: {e}")
        elif ph == "C":
            if not isinstance(e.get("args"), dict) or not e["args"]:
                fail(f"{path}: C event without args: {e}")
        elif ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                fail(f"{path}: unknown metadata event: {e}")
        elif ph != "i":
            fail(f"{path}: unexpected phase {ph!r}")
    for required in ("X", "C", "M"):
        if required not in phases:
            fail(f"{path}: no {required!r} events recorded")
    print(f"{path}: OK ({len(events)} events, phases {phases})")


def validate_log(path):
    n = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                fail(f"{path}:{lineno}: bad JSON: {err}")
            for key in ("ts_sim", "level", "component", "msg"):
                if key not in record:
                    fail(f"{path}:{lineno}: record missing {key!r}")
            if record["level"] not in LOG_LEVELS:
                fail(f"{path}:{lineno}: bad level {record['level']!r}")
            n += 1
    if n == 0:
        fail(f"{path}: no log records")
    print(f"{path}: OK ({n} records)")


def validate_progress(path):
    """/progress snapshot: the run-progress JSON the live plane serves."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not doc:
        fail(f"{path}: progress document empty (endpoint never published?)")
    numeric = ("sim_time_s", "sim_start_s", "horizon_s", "percent",
               "wall_time_s", "events_per_sec", "sim_seconds_per_wall_second",
               "eta_wall_s", "rss_mb", "vm_hwm_mb")
    for key in numeric:
        if not isinstance(doc.get(key), (int, float)):
            fail(f"{path}: missing or non-numeric {key!r}")
    if not isinstance(doc.get("events"), int) or doc["events"] < 0:
        fail(f"{path}: missing or negative 'events'")
    if not 0.0 <= doc["percent"] <= 100.0:
        fail(f"{path}: percent out of range: {doc['percent']}")
    if doc["rss_mb"] <= 0:
        fail(f"{path}: implausible rss_mb {doc['rss_mb']}")
    shards = doc.get("shards")
    if not isinstance(shards, list):
        fail(f"{path}: missing 'shards' list")
    for s in shards:
        for key in ("epoch_wall_s", "barrier_lag_s"):
            if not isinstance(s.get(key), (int, float)):
                fail(f"{path}: shard entry missing {key!r}: {s}")
        if not isinstance(s.get("shard"), int) or not isinstance(s.get("events"), int):
            fail(f"{path}: shard entry missing shard/events ints: {s}")
    print(f"{path}: OK (progress at {doc['percent']:.1f}%, "
          f"{len(shards)} shards)")


CAMPAIGN_STATES = {"queued": 0, "running": 1, "paused": 2, "evicted": 3,
                   "done": 4, "failed": 5, "cancelled": 6}


def read_samples(path):
    """name -> [(label_map, value)] from a Prometheus exposition file."""
    samples = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            m = SAMPLE.match(line)
            if not m:
                continue
            name, _, labels, value_text = m.groups()
            label_map = {lm.group(1): lm.group(2)
                         for lm in LABEL_PAIR.finditer(labels or "")}
            samples.setdefault(name, []).append(
                (label_map, parse_number(value_text)))
    return samples


def validate_campaigns(path, metrics_path=None):
    """Campaign-list JSON (GET /campaigns) from the campaign server, and —
    when the server's /metrics scrape is also given — the per-campaign
    labeled gauges cross-checked against it."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc.get("draining"), bool):
        fail(f"{path}: missing boolean 'draining'")
    for key in ("queued", "running"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            fail(f"{path}: missing or negative {key!r}")
    campaigns = doc.get("campaigns")
    if not isinstance(campaigns, list) or not campaigns:
        fail(f"{path}: missing or empty 'campaigns' array")
    states = {}
    for c in campaigns:
        where = f"{path}: campaign {c.get('id')!r}"
        if not isinstance(c.get("id"), int) or c["id"] <= 0:
            fail(f"{where}: bad id")
        if not isinstance(c.get("client"), str) or not c["client"]:
            fail(f"{where}: missing client")
        if c.get("state") not in CAMPAIGN_STATES:
            fail(f"{where}: bad state {c.get('state')!r}")
        for key in ("sim_time_s", "horizon_s", "percent"):
            if not isinstance(c.get(key), (int, float)):
                fail(f"{where}: missing or non-numeric {key!r}")
        if not 0.0 <= c["percent"] <= 100.0:
            fail(f"{where}: percent out of range: {c['percent']}")
        if not isinstance(c.get("events_executed"), int) or c["events_executed"] < 0:
            fail(f"{where}: missing or negative events_executed")
        for block, keys in (("usage", ("wall_s", "events", "max_rss_mb")),
                            ("quota", ("wall_budget_s", "event_budget",
                                       "rss_budget_mb"))):
            sub = c.get(block)
            if not isinstance(sub, dict):
                fail(f"{where}: missing {block!r} object")
            for key in keys:
                if not isinstance(sub.get(key), (int, float)):
                    fail(f"{where}: {block} missing {key!r}")
        if not isinstance(c.get("has_checkpoint"), bool):
            fail(f"{where}: missing boolean has_checkpoint")
        if c["state"] == "done" and not c.get("events_path"):
            fail(f"{where}: done campaign without events_path")
        if c["state"] in ("evicted", "failed") and not c.get("detail"):
            fail(f"{where}: {c['state']} campaign without detail")
        states[c["id"]] = c["state"]

    if metrics_path:
        samples = read_samples(metrics_path)
        by_id = {}
        for label_map, value in samples.get("ecocloud_campaign_state", []):
            if "campaign" in label_map:
                by_id[label_map["campaign"]] = value
        for cid, state in states.items():
            if str(cid) not in by_id:
                fail(f"{metrics_path}: no ecocloud_campaign_state sample "
                     f"for campaign {cid}")
            # The JSON and the scrape are captured back to back, so settled
            # (terminal/evicted) campaigns must agree exactly.
            if state in ("done", "failed", "cancelled", "evicted"):
                got = by_id[str(cid)]
                if got != CAMPAIGN_STATES[state]:
                    fail(f"{metrics_path}: campaign {cid} state gauge {got} "
                         f"!= {state} ({CAMPAIGN_STATES[state]})")
            for gauge in ("ecocloud_campaign_sim_time_seconds",
                          "ecocloud_campaign_events_executed"):
                if not any(lm.get("campaign") == str(cid)
                           for lm, _ in samples.get(gauge, [])):
                    fail(f"{metrics_path}: no {gauge} sample for campaign {cid}")
        for family in ("ecocloud_server_submissions_total",
                       "ecocloud_server_campaigns"):
            if family not in samples:
                fail(f"{metrics_path}: missing {family}")
        print(f"{metrics_path}: OK (labeled metrics for "
              f"{len(states)} campaigns)")
    print(f"{path}: OK ({len(campaigns)} campaigns, "
          f"states {sorted(set(states.values()))})")


def validate_folded(path):
    """Folded-stacks dump: 'domain;phase[;phase...] <positive integer>'."""
    n = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            m = re.match(r"^([^ ;]+(?:;[^ ;]+)+) (\d+)$", line)
            if not m or int(m.group(2)) == 0:
                fail(f"{path}:{lineno}: bad folded line: {line!r}")
            n += 1
    if n == 0:
        fail(f"{path}: no folded stacks")
    print(f"{path}: OK ({n} folded stacks)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="Prometheus text exposition file")
    parser.add_argument("--metrics-json", help="JSON metrics snapshot")
    parser.add_argument("--trace", help="Chrome trace-event JSON file")
    parser.add_argument("--log", help="JSONL structured log file")
    parser.add_argument("--progress", help="/progress JSON snapshot")
    parser.add_argument("--folded", help="folded-stacks profile dump")
    parser.add_argument("--campaigns",
                        help="campaign-list JSON from GET /campaigns "
                             "(cross-checked against --metrics when given)")
    args = parser.parse_args()
    if not any([args.metrics, args.metrics_json, args.trace, args.log,
                args.progress, args.folded, args.campaigns]):
        parser.error("nothing to validate")
    if args.metrics:
        validate_prometheus(args.metrics)
    if args.metrics_json:
        validate_metrics_json(args.metrics_json)
    if args.trace:
        validate_trace(args.trace)
    if args.log:
        validate_log(args.log)
    if args.progress:
        validate_progress(args.progress)
    if args.folded:
        validate_folded(args.folded)
    if args.campaigns:
        validate_campaigns(args.campaigns, args.metrics)
    print("telemetry outputs valid")


if __name__ == "__main__":
    main()
