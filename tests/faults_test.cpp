// Tests for the fault-injection subsystem: fault schedules, the seeded
// fault model, orphan redeployment, crash recovery end to end, and the
// hard guarantee that disabled faults leave the simulation untouched.

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "ecocloud/faults/fault_injector.hpp"
#include "ecocloud/faults/fault_model.hpp"
#include "ecocloud/faults/recovery.hpp"
#include "ecocloud/metrics/episode_summary.hpp"
#include "ecocloud/scenario/config_io.hpp"
#include "ecocloud/scenario/scenario.hpp"

using namespace ecocloud;
using ecocloud::util::Rng;

// --- Fault schedule parsing --------------------------------------------------

TEST(FaultSchedule, ParsesEntries) {
  const auto schedule =
      faults::parse_fault_schedule("crash 10-20 3600 600, crash 5 7200, repair 10-20 10800");
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].kind, faults::ScriptedFault::Kind::kCrash);
  EXPECT_EQ(schedule[0].first, 10u);
  EXPECT_EQ(schedule[0].last, 20u);
  EXPECT_DOUBLE_EQ(schedule[0].time, 3600.0);
  EXPECT_DOUBLE_EQ(schedule[0].repair_after_s, 600.0);
  EXPECT_EQ(schedule[1].first, 5u);
  EXPECT_EQ(schedule[1].last, 5u);
  EXPECT_LT(schedule[1].repair_after_s, 0.0);  // stochastic repair
  EXPECT_EQ(schedule[2].kind, faults::ScriptedFault::Kind::kRepair);
}

TEST(FaultSchedule, RoundTripsThroughToString) {
  const std::string text = "crash 10-20 3600 600, crash 5 7200, repair 10-20 10800";
  const auto schedule = faults::parse_fault_schedule(text);
  const auto reparsed = faults::parse_fault_schedule(faults::to_string(schedule));
  ASSERT_EQ(reparsed.size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(reparsed[i].kind, schedule[i].kind);
    EXPECT_EQ(reparsed[i].first, schedule[i].first);
    EXPECT_EQ(reparsed[i].last, schedule[i].last);
    EXPECT_DOUBLE_EQ(reparsed[i].time, schedule[i].time);
    EXPECT_DOUBLE_EQ(reparsed[i].repair_after_s, schedule[i].repair_after_s);
  }
}

TEST(FaultSchedule, RejectsMalformed) {
  EXPECT_THROW(faults::parse_fault_schedule("explode 3 100"), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_schedule("crash 3"), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_schedule("crash 20-10 100"), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_schedule("crash x 100"), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_schedule("repair 3 100 extra"),
               std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_schedule("crash 3 -5"), std::invalid_argument);
}

// --- FaultParams -------------------------------------------------------------

TEST(FaultParams, DisabledByDefault) {
  faults::FaultParams params;
  EXPECT_FALSE(params.enabled());
  params.validate();  // defaults are valid
}

TEST(FaultParams, AnyProcessEnables) {
  {
    faults::FaultParams p;
    p.server_mtbf_s = 3600.0;
    EXPECT_TRUE(p.enabled());
  }
  {
    faults::FaultParams p;
    p.migration_abort_prob = 0.1;
    EXPECT_TRUE(p.enabled());
  }
  {
    faults::FaultParams p;
    p.invitation_loss_prob = 0.1;
    EXPECT_TRUE(p.enabled());
  }
  {
    faults::FaultParams p;
    p.schedule = faults::parse_fault_schedule("crash 0 60");
    EXPECT_TRUE(p.enabled());
  }
}

TEST(FaultParams, ValidateRejectsBadValues) {
  {
    faults::FaultParams p;
    p.migration_abort_prob = 1.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    faults::FaultParams p;
    p.boot_failure_prob = -0.1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    faults::FaultParams p;
    p.server_mtbf_s = std::numeric_limits<double>::infinity();
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    faults::FaultParams p;
    p.server_mtbf_s = 3600.0;
    p.server_mttr_s = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    faults::FaultParams p;
    p.redeploy_backoff_s = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

// --- FaultModel --------------------------------------------------------------

TEST(FaultModel, DeterministicPerSeed) {
  faults::FaultParams params;
  params.server_mtbf_s = 3600.0;
  params.migration_abort_prob = 0.3;
  faults::FaultModel a(params, Rng(42));
  faults::FaultModel b(params, Rng(42));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.time_to_failure(), b.time_to_failure());
    EXPECT_EQ(a.migration_aborts(), b.migration_aborts());
  }
}

TEST(FaultModel, ZeroProbabilityHooksStayEmpty) {
  faults::FaultParams params;  // everything off
  faults::FaultModel model(params, Rng(1));
  const core::FaultHooks hooks = model.make_hooks();
  EXPECT_FALSE(static_cast<bool>(hooks.drop_invitation));
  EXPECT_FALSE(static_cast<bool>(hooks.drop_reply));
  EXPECT_FALSE(static_cast<bool>(hooks.boot_fails));
  EXPECT_FALSE(static_cast<bool>(hooks.migration_aborts));
  // Without message loss the manager never repeats a silent round.
  EXPECT_EQ(hooks.max_invite_rounds, 1u);
}

TEST(FaultModel, LossyControlPlaneEnablesRetryRounds) {
  faults::FaultParams params;
  params.reply_loss_prob = 0.2;
  params.max_invite_rounds = 4;
  faults::FaultModel model(params, Rng(1));
  const core::FaultHooks hooks = model.make_hooks();
  EXPECT_FALSE(static_cast<bool>(hooks.drop_invitation));  // prob 0 stays empty
  EXPECT_TRUE(static_cast<bool>(hooks.drop_reply));
  EXPECT_EQ(hooks.max_invite_rounds, 4u);
}

// --- RedeployQueue -----------------------------------------------------------

namespace {

/// One active server filled to the brim (nobody volunteers, nothing left
/// to wake): the queue's worst case.
struct SaturatedFixture {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  faults::FaultParams fault_params;
  metrics::ResilienceStats stats;
  std::unique_ptr<core::EcoCloudController> controller;
  std::unique_ptr<faults::RedeployQueue> queue;
  dc::VmId orphan = dc::kNoVm;

  void build(bool with_spare_server) {
    const auto full = datacenter.add_server(6, 2000.0);
    if (with_spare_server) datacenter.add_server(6, 2000.0);  // hibernated
    fault_params.redeploy_delay_s = 10.0;
    fault_params.redeploy_backoff_s = 5.0;
    fault_params.redeploy_backoff_max_s = 40.0;
    fault_params.redeploy_max_attempts = 3;
    controller = std::make_unique<core::EcoCloudController>(simulator, datacenter,
                                                            params, Rng(5));
    controller->force_activate(full);
    const auto filler = datacenter.create_vm(6 * 2000.0);  // u = 1: fa = 0
    datacenter.place_vm(0.0, filler, full);
    queue = std::make_unique<faults::RedeployQueue>(simulator, *controller,
                                                    fault_params, stats);
    orphan = datacenter.create_vm(500.0);
  }
};

}  // namespace

TEST(RedeployQueue, RetriesWithBackoffThenAbandons) {
  SaturatedFixture f;
  f.build(/*with_spare_server=*/false);
  f.queue->add(f.orphan);
  EXPECT_EQ(f.queue->pending(), 1u);
  // Attempts at t = 10, 10+5, 15+10; the third failure exhausts the policy.
  f.simulator.run();
  EXPECT_EQ(f.queue->pending(), 0u);
  EXPECT_EQ(f.stats.abandoned_vms(), 1u);
  EXPECT_EQ(f.stats.redeployed_vms(), 0u);
  EXPECT_DOUBLE_EQ(f.stats.downtime_vm_seconds(), 25.0);
  EXPECT_DOUBLE_EQ(f.simulator.now(), 25.0);
  EXPECT_FALSE(f.datacenter.vm(f.orphan).placed());
}

TEST(RedeployQueue, RecordsLatencyOnSuccess) {
  SaturatedFixture f;
  f.build(/*with_spare_server=*/true);
  f.queue->add(f.orphan);
  f.simulator.run_until(sim::kHour);
  // The first attempt (after the detection delay) wakes the spare server.
  EXPECT_EQ(f.queue->pending(), 0u);
  EXPECT_EQ(f.stats.redeployed_vms(), 1u);
  EXPECT_EQ(f.stats.abandoned_vms(), 0u);
  EXPECT_DOUBLE_EQ(f.stats.downtime_vm_seconds(), 10.0);
  EXPECT_DOUBLE_EQ(f.stats.redeploy_latency().mean(), 10.0);
  EXPECT_TRUE(f.datacenter.vm(f.orphan).placed());
}

TEST(RedeployQueue, ForgetClosesOpenDowntime) {
  SaturatedFixture f;
  f.build(/*with_spare_server=*/false);
  f.queue->add(f.orphan);
  f.simulator.run_until(4.0);  // before the first attempt
  f.queue->forget(f.orphan);
  EXPECT_EQ(f.queue->pending(), 0u);
  EXPECT_DOUBLE_EQ(f.stats.downtime_vm_seconds(), 4.0);
  // The cancelled retry never fires.
  f.simulator.run();
  EXPECT_EQ(f.stats.abandoned_vms(), 0u);
  EXPECT_EQ(f.stats.redeployed_vms(), 0u);
}

TEST(RedeployQueue, FinalizeClosesSurvivors) {
  SaturatedFixture f;
  f.build(/*with_spare_server=*/false);
  f.queue->add(f.orphan);
  f.simulator.run_until(7.0);
  f.queue->finalize(7.0);
  EXPECT_EQ(f.queue->pending(), 0u);
  EXPECT_DOUBLE_EQ(f.stats.downtime_vm_seconds(), 7.0);
}

TEST(RedeployQueue, RejectsDoubleAdd) {
  SaturatedFixture f;
  f.build(/*with_spare_server=*/false);
  f.queue->add(f.orphan);
  EXPECT_THROW(f.queue->add(f.orphan), std::invalid_argument);
}

// --- Crash recovery end to end ----------------------------------------------

namespace {

scenario::DailyConfig small_daily() {
  scenario::DailyConfig config;
  config.fleet.num_servers = 40;
  config.num_vms = 500;
  config.horizon_s = 12.0 * sim::kHour;
  config.seed = 77;
  return config;
}

}  // namespace

TEST(FaultInjection, ScriptedCrashRecoveryIntegration) {
  scenario::DailyConfig config = small_daily();
  // Kill half the fleet four hours in; every machine is back 30 min later.
  config.faults.schedule = faults::parse_fault_schedule("crash 0-19 14400 1800");
  scenario::DailyScenario daily(config);
  daily.run();

  faults::FaultInjector* injector = daily.fault_injector();
  ASSERT_NE(injector, nullptr);
  const metrics::ResilienceStats& r = injector->stats();
  EXPECT_GT(r.crashes(), 0u);
  EXPECT_EQ(r.repairs(), r.crashes());
  // Half the fleet hosted VMs, so the crash orphaned some, and with the
  // surviving half plus repairs there is room to bring them all back.
  EXPECT_GT(r.orphaned_vms(), 0u);
  EXPECT_EQ(r.redeployed_vms(), r.orphaned_vms());
  EXPECT_EQ(r.abandoned_vms(), 0u);
  // Every redeploy costs at least the detection-and-restart delay.
  EXPECT_GE(r.redeploy_latency().min(),
            config.faults.redeploy_delay_s);
  EXPECT_GE(r.downtime_vm_seconds(),
            static_cast<double>(r.redeployed_vms()) * config.faults.redeploy_delay_s);
  EXPECT_LT(injector->availability(), 1.0);
  EXPECT_GT(injector->availability(), 0.99);
  // All repaired by the horizon; the fleet is whole again.
  EXPECT_EQ(daily.datacenter().failed_server_count(), 0u);
  EXPECT_EQ(daily.datacenter().total_failures(), r.crashes());
}

TEST(FaultInjection, RandomCrashesDegradeAvailabilityGracefully) {
  scenario::DailyConfig config = small_daily();
  config.faults.server_mtbf_s = 6.0 * sim::kHour;
  config.faults.server_mttr_s = 900.0;
  scenario::DailyScenario daily(config);
  daily.run();

  faults::FaultInjector* injector = daily.fault_injector();
  ASSERT_NE(injector, nullptr);
  const metrics::ResilienceStats& r = injector->stats();
  EXPECT_GT(r.crashes(), 0u);
  EXPECT_GT(r.orphaned_vms(), 0u);
  EXPECT_LT(injector->availability(), 1.0);
  EXPECT_GT(injector->availability(), 0.9);
  // The renewal process only crashes powered servers, so the crash count
  // stays within an order of magnitude of horizon / MTBF per server.
  EXPECT_LT(r.crashes(), 400u);
}

TEST(FaultInjection, SameSeedSameFaultSequence) {
  auto run = [] {
    scenario::DailyConfig config = small_daily();
    config.horizon_s = 6.0 * sim::kHour;
    config.faults.server_mtbf_s = 4.0 * sim::kHour;
    scenario::DailyScenario daily(config);
    daily.run();
    const metrics::ResilienceStats& r = daily.fault_injector()->stats();
    return std::tuple{r.crashes(), r.orphaned_vms(), r.redeployed_vms(),
                      r.downtime_vm_seconds(),
                      daily.datacenter().energy_joules()};
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjection, MessageLossCostsTrafficNotAvailability) {
  scenario::DailyConfig config = small_daily();
  config.horizon_s = 4.0 * sim::kHour;
  config.faults.invitation_loss_prob = 0.2;
  config.faults.reply_loss_prob = 0.1;
  scenario::DailyScenario daily(config);
  daily.run();

  const core::MessageLog& messages = daily.ecocloud()->messages();
  EXPECT_GT(messages.invitations_lost, 0u);
  EXPECT_GT(messages.replies_lost, 0u);
  // No crashes: nothing is ever down.
  EXPECT_EQ(daily.fault_injector()->stats().crashes(), 0u);
  EXPECT_DOUBLE_EQ(daily.fault_injector()->availability(), 1.0);
}

TEST(FaultInjection, CertainMigrationAbortMeansNoneComplete) {
  scenario::DailyConfig config = small_daily();
  config.horizon_s = 4.0 * sim::kHour;
  config.faults.migration_abort_prob = 1.0;
  scenario::DailyScenario daily(config);
  daily.run();

  EXPECT_GT(daily.ecocloud()->aborted_migrations(), 0u);
  EXPECT_EQ(daily.ecocloud()->low_migrations(), 0u);
  EXPECT_EQ(daily.ecocloud()->high_migrations(), 0u);
  EXPECT_EQ(daily.datacenter().total_migrations(), 0u);
}

TEST(FaultInjection, ManualCrashStaysDownUntilRepaired) {
  scenario::DailyConfig config = small_daily();
  config.horizon_s = sim::kHour;
  // Enable the injector without any stochastic process.
  config.faults.schedule = faults::parse_fault_schedule("crash 39 999999");
  scenario::DailyScenario daily(config);
  daily.run();

  faults::FaultInjector* injector = daily.fault_injector();
  ASSERT_NE(injector, nullptr);
  dc::DataCenter& d = daily.datacenter();
  // Find a powered server to kill by hand.
  dc::ServerId victim = dc::kNoServer;
  for (dc::ServerId s = 0; s < static_cast<dc::ServerId>(d.num_servers()); ++s) {
    if (d.server(s).active()) {
      victim = s;
      break;
    }
  }
  ASSERT_NE(victim, dc::kNoServer);
  injector->crash_server(victim);
  EXPECT_TRUE(d.server(victim).failed());
  injector->repair_server(victim);
  EXPECT_TRUE(d.server(victim).hibernated());
  EXPECT_EQ(injector->stats().crashes(), 1u);
  EXPECT_EQ(injector->stats().repairs(), 1u);
}

// --- Faults off: the simulation must not change ------------------------------

TEST(FaultsOff, NoInjectorIsCreated) {
  scenario::DailyConfig config = small_daily();
  config.horizon_s = sim::kHour;
  ASSERT_FALSE(config.faults.enabled());
  scenario::DailyScenario daily(config);
  daily.run();
  EXPECT_EQ(daily.fault_injector(), nullptr);
}

// Fixed-seed 48 h regression: with every fault knob at zero the run must
// reproduce the pre-faults build bit for bit. The reference figures were
// captured from the seed revision (60 servers, 900 VMs, seed 20130520);
// any drift here means a fault-free code path changed behavior.
TEST(FaultsOff, RegressionMatchesFaultFreeBuildExactly) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 60;
  config.num_vms = 900;
  config.horizon_s = 48.0 * sim::kHour;
  config.seed = 20130520;
  scenario::DailyScenario daily(config);
  daily.run();

  const dc::DataCenter& d = daily.datacenter();
  const auto episodes = metrics::summarize_episodes(d.overload_episodes());
  EXPECT_EQ(d.energy_joules(), 1079811499.5992701);
  EXPECT_EQ(d.vm_seconds(), 155411999.99999994);
  EXPECT_EQ(d.overload_vm_seconds(), 106104.83333333278);
  EXPECT_EQ(episodes.count, 60u);
  EXPECT_EQ(episodes.mean_duration_s, 43.055555555555266);
  EXPECT_EQ(episodes.max_duration_s, 900.0);
  EXPECT_EQ(d.total_migrations(), 939u);
  EXPECT_EQ(daily.ecocloud()->low_migrations(), 270u);
  EXPECT_EQ(daily.ecocloud()->high_migrations(), 669u);
  EXPECT_EQ(d.total_activations(), 48u);
  EXPECT_EQ(d.total_hibernations(), 19u);
  EXPECT_EQ(daily.ecocloud()->wake_ups(), 48u);
  EXPECT_EQ(daily.ecocloud()->messages().total(), 35285u);
  EXPECT_EQ(daily.simulator().executed_events(), 1038961u);
}
