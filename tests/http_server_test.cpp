// Tests for the embedded observability HTTP server: endpoint routing,
// error handling, ephemeral-port binding, bind conflicts, and concurrent
// scrapes racing snapshot publication.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ecocloud/obs/http_server.hpp"

using namespace ecocloud;

namespace {

/// Send \p raw to 127.0.0.1:\p port and return everything the server
/// writes until it closes the connection.
std::string http_roundtrip(std::uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to port " << port;
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& target) {
  return http_roundtrip(port,
                        "GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

/// Body of a response (everything after the blank line).
std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

}  // namespace

TEST(HttpServer, HealthzAlwaysAnswers) {
  obs::SnapshotHub hub;
  obs::HttpServer server(hub, /*port=*/0);
  const std::string response = get(server.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_EQ(body_of(response), "ok\n");
}

TEST(HttpServer, ServesPublishedMetricsAndProgress) {
  obs::SnapshotHub hub;
  hub.publish_metrics("# HELP ecocloud_up up\necocloud_up 1\n");
  hub.publish_progress("{\"sim_time_s\":42}\n");
  obs::HttpServer server(hub, 0);

  const std::string metrics = get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_EQ(body_of(metrics), "# HELP ecocloud_up up\necocloud_up 1\n");

  const std::string progress = get(server.port(), "/progress");
  EXPECT_NE(progress.find("application/json"), std::string::npos);
  EXPECT_EQ(body_of(progress), "{\"sim_time_s\":42}\n");
}

TEST(HttpServer, ProgressDefaultsToEmptyObject) {
  obs::SnapshotHub hub;
  obs::HttpServer server(hub, 0);
  EXPECT_EQ(body_of(get(server.port(), "/progress")), "{}\n");
}

TEST(HttpServer, QueryStringIsIgnoredForRouting) {
  obs::SnapshotHub hub;
  obs::HttpServer server(hub, 0);
  const std::string response = get(server.port(), "/healthz?verbose=1");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
}

TEST(HttpServer, UnknownPathIs404) {
  obs::SnapshotHub hub;
  obs::HttpServer server(hub, 0);
  EXPECT_NE(get(server.port(), "/nope").find("404"), std::string::npos);
}

TEST(HttpServer, NonGetIs405WithAllowHeader) {
  obs::SnapshotHub hub;
  obs::HttpServer server(hub, 0);
  const std::string response = http_roundtrip(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("405"), std::string::npos) << response;
  EXPECT_NE(response.find("Allow: GET"), std::string::npos) << response;
}

TEST(HttpServer, GarbageRequestIs400) {
  obs::SnapshotHub hub;
  obs::HttpServer server(hub, 0);
  const std::string response =
      http_roundtrip(server.port(), "go away\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
}

TEST(HttpServer, EphemeralPortIsReported) {
  obs::SnapshotHub hub;
  obs::HttpServer server(hub, 0);
  EXPECT_GT(server.port(), 0);
  // A second ephemeral server coexists on its own port.
  obs::HttpServer other(hub, 0);
  EXPECT_GT(other.port(), 0);
  EXPECT_NE(server.port(), other.port());
}

TEST(HttpServer, BindConflictThrows) {
  obs::SnapshotHub hub;
  obs::HttpServer server(hub, 0);
  EXPECT_THROW(obs::HttpServer(hub, server.port()), std::runtime_error);
}

TEST(HttpServer, StopIsIdempotent) {
  obs::SnapshotHub hub;
  obs::HttpServer server(hub, 0);
  server.stop();
  server.stop();
}

TEST(HttpServer, ConcurrentScrapesWhilePublishing) {
  obs::SnapshotHub hub;
  hub.publish_metrics("ecocloud_epoch 0\n");
  obs::HttpServer server(hub, 0);
  const std::uint16_t port = server.port();

  std::atomic<bool> failed{false};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([port, &failed] {
      for (int i = 0; i < 25; ++i) {
        const std::string response = get(port, "/metrics");
        // Every scrape sees a complete, well-formed snapshot — never a
        // torn one — because the hub swaps whole strings under a mutex.
        if (response.find("200 OK") == std::string::npos ||
            body_of(response).find("ecocloud_epoch ") == std::string::npos) {
          failed = true;
        }
      }
    });
  }
  for (int epoch = 1; epoch <= 50; ++epoch) {
    hub.publish_metrics("ecocloud_epoch " + std::to_string(epoch) + "\n");
  }
  for (auto& thread : scrapers) thread.join();
  EXPECT_FALSE(failed);
}

// ---------------------------------------------------------------------------
// Handler mode (the campaign API path): POST bodies, custom routing, and
// the hardening limits — body cap (413), slow clients (408), and the
// per-connection total deadline against slow-loris drip-feeding.

namespace {

/// Echo handler: returns "<METHOD> <TARGET>\n<BODY>".
obs::HttpResponse echo_handler(const obs::HttpRequest& request) {
  return obs::HttpResponse::text(
      200, request.method + " " + request.target + "\n" + request.body);
}

std::string post(std::uint16_t port, const std::string& target,
                 const std::string& body) {
  return http_roundtrip(port, "POST " + target + " HTTP/1.1\r\nHost: x\r\n" +
                                  "Content-Length: " +
                                  std::to_string(body.size()) + "\r\n\r\n" +
                                  body);
}

}  // namespace

TEST(HttpServerHandler, PostBodyRoundTrips) {
  obs::HttpServer server(echo_handler, 0);
  const std::string response = post(server.port(), "/submit", "hello\nworld\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_EQ(body_of(response), "POST /submit\nhello\nworld\n");
}

TEST(HttpServerHandler, QueryStringIsSplitOffTarget) {
  obs::HttpServer server(
      [](const obs::HttpRequest& request) {
        return obs::HttpResponse::text(200,
                                       request.target + "|" + request.query);
      },
      0);
  EXPECT_EQ(body_of(get(server.port(), "/a/b?x=1&y=2")), "/a/b|x=1&y=2");
}

TEST(HttpServerHandler, OversizedBodyIs413) {
  obs::HttpLimits limits;
  limits.max_body_bytes = 64;
  obs::HttpServer server(echo_handler, 0, limits);
  const std::string response =
      post(server.port(), "/submit", std::string(65, 'x'));
  EXPECT_NE(response.find("413"), std::string::npos) << response;
}

TEST(HttpServerHandler, BadContentLengthIs400) {
  obs::HttpServer server(echo_handler, 0);
  const std::string response = http_roundtrip(
      server.port(),
      "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos) << response;
}

TEST(HttpServerHandler, TruncatedBodyIs408) {
  obs::HttpLimits limits;
  limits.read_timeout_ms = 100;
  limits.connection_deadline_ms = 300;
  obs::HttpServer server(echo_handler, 0, limits);
  // Promise 100 bytes, send 5, go silent: the read times out.
  const std::string response = http_roundtrip(
      server.port(),
      "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\nhello");
  EXPECT_NE(response.find("408"), std::string::npos) << response;
}

TEST(HttpServerHandler, SlowLorisHitsConnectionDeadline) {
  obs::HttpLimits limits;
  limits.read_timeout_ms = 200;
  limits.connection_deadline_ms = 400;
  obs::HttpServer server(echo_handler, 0, limits);

  // Drip one header byte at a time: each read beats the idle timeout, but
  // the per-connection deadline still cuts the conversation off.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string head = "GET /healthz HTTP/1.1\r\nHost: x\r\n";
  const auto start = std::chrono::steady_clock::now();
  std::string response;
  for (char byte : head) {
    if (::send(fd, &byte, 1, MSG_NOSIGNAL) != 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (std::chrono::steady_clock::now() - start >
        std::chrono::seconds(5)) {
      break;  // server should have hung up long ago; fail below
    }
  }
  char buf[1024];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The connection died around the deadline — far before the drip would
  // have completed the request — with a 408 on the way out.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_NE(response.find("408"), std::string::npos) << response;
}

TEST(HttpServerHandler, HandlerExceptionIs500) {
  obs::HttpServer server(
      [](const obs::HttpRequest&) -> obs::HttpResponse {
        throw std::runtime_error("boom");
      },
      0);
  const std::string response = get(server.port(), "/kaboom");
  EXPECT_NE(response.find("500"), std::string::npos) << response;
}

TEST(HttpServerHandler, ExtraHeadersAreEmitted) {
  obs::HttpServer server(
      [](const obs::HttpRequest&) {
        obs::HttpResponse response = obs::HttpResponse::text(429, "later\n");
        response.extra_headers.push_back("Retry-After: 5");
        return response;
      },
      0);
  const std::string response = get(server.port(), "/x");
  EXPECT_NE(response.find("429"), std::string::npos) << response;
  EXPECT_NE(response.find("Retry-After: 5"), std::string::npos) << response;
}
