// Tests for the two-step migration procedure.

#include <gtest/gtest.h>

#include "ecocloud/core/migration.hpp"

namespace core = ecocloud::core;
namespace dc = ecocloud::dc;
using ecocloud::util::Rng;

namespace {

struct Fixture {
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  Rng rng{77};
  std::unique_ptr<core::AssignmentProcedure> assignment;
  std::unique_ptr<core::MigrationProcedure> migration;

  void build() {
    assignment = std::make_unique<core::AssignmentProcedure>(params, rng);
    migration = std::make_unique<core::MigrationProcedure>(params, *assignment, rng);
  }

  dc::ServerId add_active_server(unsigned cores = 6) {
    const auto s = datacenter.add_server(cores, 2000.0);
    datacenter.start_booting(0.0, s);
    datacenter.finish_booting(0.0, s);
    return s;
  }

  dc::VmId place_vm(dc::ServerId s, double demand_mhz) {
    const auto v = datacenter.create_vm(demand_mhz);
    datacenter.place_vm(0.0, v, s);
    return v;
  }
};

}  // namespace

TEST(Migration, NoActionInsideBand) {
  Fixture f;
  f.build();
  const auto s = f.add_active_server();
  f.place_vm(s, 0.7 * 12000.0);  // u = 0.7, inside [0.5, 0.95]
  for (int i = 0; i < 200; ++i) {
    bool fired = true;
    EXPECT_FALSE(f.migration->check(f.datacenter, s, 0.0, &fired).has_value());
    EXPECT_FALSE(fired);
  }
}

TEST(Migration, EmptyOrInactiveServersSkipped) {
  Fixture f;
  f.build();
  const auto active_empty = f.add_active_server();
  const auto sleeping = f.datacenter.add_server(6, 2000.0);
  EXPECT_FALSE(f.migration->check(f.datacenter, active_empty, 0.0).has_value());
  EXPECT_FALSE(f.migration->check(f.datacenter, sleeping, 0.0).has_value());
}

TEST(Migration, GraceSuppressesChecks) {
  Fixture f;
  f.build();
  const auto s = f.add_active_server();
  f.place_vm(s, 0.2 * 12000.0);  // u = 0.2 < Tl, would normally drain
  f.datacenter.server_mutable(s).set_grace_until(100.0);
  bool any = false;
  for (int i = 0; i < 100; ++i) {
    if (f.migration->check(f.datacenter, s, 50.0).has_value()) any = true;
  }
  EXPECT_FALSE(any);
}

TEST(Migration, CooldownSuppressesChecks) {
  Fixture f;
  f.build();
  const auto s = f.add_active_server();
  f.place_vm(s, 0.1 * 12000.0);
  f.datacenter.server_mutable(s).set_migration_cooldown_until(100.0);
  bool fired = false;
  EXPECT_FALSE(f.migration->check(f.datacenter, s, 50.0, &fired).has_value());
  EXPECT_FALSE(fired);
}

TEST(Migration, LowTrialFrequencyMatchesFl) {
  Fixture f;
  f.build();
  const auto source = f.add_active_server();
  f.place_vm(source, 0.25 * 12000.0);  // u = 0.25
  const auto dest = f.add_active_server();
  f.place_vm(dest, 0.675 * 12000.0);  // perfect acceptor
  const double expected = f.migration->fl()(0.25);
  int fired_count = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    bool fired = false;
    (void)f.migration->check(f.datacenter, source, 0.0, &fired);
    if (fired) ++fired_count;
  }
  EXPECT_NEAR(static_cast<double>(fired_count) / n, expected, 0.03);
}

TEST(Migration, LowMigrationFindsDestination) {
  Fixture f;
  f.build();
  const auto source = f.add_active_server();
  const auto vm = f.place_vm(source, 0.1 * 12000.0);
  const auto dest = f.add_active_server();
  f.place_vm(dest, 0.675 * 12000.0);
  // f_l(0.1) = (1-0.2)^0.25 ~ 0.95: a handful of tries will fire.
  for (int i = 0; i < 100; ++i) {
    if (auto plan = f.migration->check(f.datacenter, source, 0.0)) {
      EXPECT_FALSE(plan->is_high);
      EXPECT_EQ(plan->vm, vm);
      ASSERT_TRUE(plan->dest.has_value());
      EXPECT_EQ(*plan->dest, dest);
      EXPECT_FALSE(plan->wake);
      return;
    }
  }
  FAIL() << "low migration never fired";
}

TEST(Migration, LowMigrationNeverWakes) {
  Fixture f;
  f.build();
  const auto source = f.add_active_server();
  f.place_vm(source, 0.1 * 12000.0);
  f.datacenter.add_server(6, 2000.0);  // a sleeper that must stay asleep
  // No other active server: every fired trial must yield no plan.
  for (int i = 0; i < 200; ++i) {
    const auto plan = f.migration->check(f.datacenter, source, 0.0);
    EXPECT_FALSE(plan.has_value());
  }
}

TEST(Migration, HighMigrationSelectsSufficientVm) {
  Fixture f;
  f.params.th = 0.92;  // keep Ta < Th valid
  f.build();
  const auto source = f.add_active_server();  // capacity 12000
  // u = 0.97: one big VM (0.2 share) and small ones (0.02 each).
  const auto big = f.place_vm(source, 2400.0);
  for (int i = 0; i < 47; ++i) f.place_vm(source, 200.0);
  ASSERT_NEAR(f.datacenter.server(source).utilization(), 0.9783, 0.01);
  const auto dest = f.add_active_server();
  f.place_vm(dest, 0.5 * 12000.0);
  // share needed = u - Th ~ 0.058; only the big VM (share 0.2) qualifies.
  for (int i = 0; i < 200; ++i) {
    if (auto plan = f.migration->check(f.datacenter, source, 0.0)) {
      EXPECT_TRUE(plan->is_high);
      EXPECT_EQ(plan->vm, big);
      EXPECT_FALSE(plan->recheck_suggested);
      return;
    }
  }
  FAIL() << "high migration never fired";
}

TEST(Migration, HighMigrationFallsBackToLargestAndSuggestsRecheck) {
  Fixture f;
  f.params.th = 0.80;
  f.params.ta = 0.75;
  f.params.tl = 0.3;
  f.build();
  const auto source = f.add_active_server();
  // u = 0.95 with all shares tiny (<< u - Th = 0.15): footnote-3 case.
  dc::VmId largest = dc::kNoVm;
  for (int i = 0; i < 19; ++i) {
    largest = f.place_vm(source, 600.0);  // share 0.05 each
  }
  const auto dest = f.add_active_server();
  f.place_vm(dest, 0.5 * 12000.0);
  for (int i = 0; i < 200; ++i) {
    if (auto plan = f.migration->check(f.datacenter, source, 0.0)) {
      EXPECT_TRUE(plan->is_high);
      EXPECT_TRUE(plan->recheck_suggested);
      // All VMs are the same size, any is "largest"; demand must match.
      EXPECT_DOUBLE_EQ(f.datacenter.vm(plan->vm).demand_mhz, 600.0);
      (void)largest;
      return;
    }
  }
  FAIL() << "high migration never fired";
}

TEST(Migration, HighMigrationUsesReducedThreshold) {
  Fixture f;
  f.build();
  const auto source = f.add_active_server();
  f.place_vm(source, 0.97 * 12000.0);
  // Destination at u = 0.88: below Ta = 0.9 but above 0.9 * 0.97 = 0.873,
  // so it must NOT be eligible for this high migration.
  const auto dest = f.add_active_server();
  f.place_vm(dest, 0.88 * 12000.0);
  for (int i = 0; i < 300; ++i) {
    if (auto plan = f.migration->check(f.datacenter, source, 0.0)) {
      EXPECT_TRUE(plan->is_high);
      EXPECT_FALSE(plan->dest.has_value());
      EXPECT_TRUE(plan->wake);  // nobody volunteered -> ask for a wake-up
      return;
    }
  }
  FAIL() << "high migration never fired";
}

TEST(Migration, EffectiveUtilizationDiscountsOutbound) {
  Fixture f;
  f.build();
  const auto source = f.add_active_server();
  const auto v1 = f.place_vm(source, 6000.0);
  f.place_vm(source, 6000.0);  // u = 1.0
  const auto dest = f.add_active_server();
  f.datacenter.begin_migration(0.0, v1, dest);
  const double u_eff = core::MigrationProcedure::effective_utilization(
      f.datacenter, f.datacenter.server(source));
  EXPECT_DOUBLE_EQ(u_eff, 0.5);
}

TEST(Migration, MigratingVmsNotSelectedAgain) {
  Fixture f;
  f.build();
  const auto source = f.add_active_server();
  const auto v1 = f.place_vm(source, 0.1 * 12000.0);
  const auto v2 = f.place_vm(source, 0.1 * 12000.0);
  const auto dest = f.add_active_server();
  f.place_vm(dest, 0.675 * 12000.0);
  f.datacenter.begin_migration(0.0, v1, dest);
  // u_eff = 0.1 < Tl; only v2 is movable.
  for (int i = 0; i < 300; ++i) {
    if (auto plan = f.migration->check(f.datacenter, source, 0.0)) {
      EXPECT_EQ(plan->vm, v2);
      return;
    }
  }
  FAIL() << "low migration never fired";
}
