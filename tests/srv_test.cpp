// Tests for the campaign server control plane (src/srv): journal framing
// and torn-tail recovery, submission parsing, the quota watchdog, the
// campaign state machine through the HTTP handler, and the nemesis paths
// the design promises to survive — quota eviction + resume, drain +
// restart recovery, torn journals, memory pressure, and submissions
// racing a drain. The load-bearing assertions are the byte-compares: a
// campaign's event log must be identical to the same scenario run in one
// shot, no matter how many times it was paused, evicted, or recovered.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/scenario/config_io.hpp"
#include "ecocloud/scenario/scenario.hpp"
#include "ecocloud/srv/campaign.hpp"
#include "ecocloud/srv/journal.hpp"
#include "ecocloud/srv/server.hpp"

using namespace ecocloud;

namespace {

/// Small daily scenario that completes in well under a second; every
/// server test uses it (sometimes with campaign.* lease lines prepended).
constexpr const char* kScenarioText =
    "servers = 4\n"
    "vms = 12\n"
    "horizon_hours = 1\n"
    "warmup_hours = 0.25\n"
    "seed = 7\n";

/// Fresh per-test data dir. A stale journal or checkpoint from a previous
/// ctest invocation would replay as real state, so wipe it completely.
std::string temp_dir(const std::string& name) {
  const std::string path = ::testing::TempDir() + "srv_test_" + name;
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Event CSV of the scenario run uninterrupted, in process — the
/// reference every server-side event log must match byte for byte.
std::string one_shot_events(const std::string& scenario_text) {
  std::istringstream in(scenario_text);
  scenario::DailyConfig config = scenario::load_daily_config(in);
  scenario::DailyScenario daily(config);
  metrics::EventLog log;
  log.attach(*daily.ecocloud());
  daily.run();
  std::ostringstream out;
  log.write_csv(out);
  return out.str();
}

obs::HttpRequest make_request(const std::string& method,
                              const std::string& target,
                              const std::string& body = {}) {
  obs::HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  return request;
}

srv::ServerConfig fast_config(const std::string& data_dir) {
  srv::ServerConfig config;
  config.port = 0;
  config.workers = 2;
  config.data_dir = data_dir;
  // Small slices so pause/evict/checkpoint safe points come up quickly.
  config.slice_s = 300.0;
  config.checkpoint_every_slices = 2;
  return config;
}

int status_of(const obs::HttpResponse& response) { return response.status; }

/// Poll a campaign until it reaches \p state (by name in the status doc).
bool wait_for_state(srv::CampaignServer& server, std::uint64_t id,
                    srv::CampaignState state, double timeout_s = 30.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (server.state_of(id) == state) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Journal framing

TEST(SubmissionJournal, RoundTripsSubmitAndStateRecords) {
  const std::string dir = temp_dir("journal_roundtrip");
  const std::string path = dir + "/journal.bin";
  {
    srv::SubmissionJournal journal(path);
    EXPECT_TRUE(journal.recovered().empty());
    srv::CampaignQuota quota;
    quota.wall_budget_s = 10.0;
    quota.event_budget = 500;
    quota.rss_budget_mb = 256.0;
    journal.append_submit(1, "alice", "job-a", quota, "servers = 4\n");
    journal.append_state(1, srv::CampaignState::kEvicted, "event budget");
    journal.append_state(1, srv::CampaignState::kQueued);
  }
  srv::SubmissionJournal journal(path);
  ASSERT_EQ(journal.recovered().size(), 3u);
  EXPECT_EQ(journal.truncated_bytes(), 0u);
  const auto& submit = journal.recovered()[0];
  EXPECT_EQ(submit.type, srv::JournalRecordType::kSubmit);
  EXPECT_EQ(submit.campaign_id, 1u);
  EXPECT_EQ(submit.client, "alice");
  EXPECT_EQ(submit.idem_key, "job-a");
  EXPECT_DOUBLE_EQ(submit.quota.wall_budget_s, 10.0);
  EXPECT_EQ(submit.quota.event_budget, 500u);
  EXPECT_DOUBLE_EQ(submit.quota.rss_budget_mb, 256.0);
  EXPECT_EQ(submit.config_text, "servers = 4\n");
  EXPECT_EQ(journal.recovered()[1].state, srv::CampaignState::kEvicted);
  EXPECT_EQ(journal.recovered()[1].detail, "event budget");
  EXPECT_EQ(journal.recovered()[2].state, srv::CampaignState::kQueued);
}

TEST(SubmissionJournal, TornTailIsTruncatedAndAppendableAfter) {
  const std::string dir = temp_dir("journal_torn");
  const std::string path = dir + "/journal.bin";
  {
    srv::SubmissionJournal journal(path);
    journal.append_submit(1, "a", "", {}, "x\n");
    journal.append_state(1, srv::CampaignState::kDone);
  }
  // A SIGKILL mid-append leaves a partial frame: a valid magic with a
  // length that runs past EOF.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char torn[] = {'E', 'C', 'J', 'L', '\x40', '\x00', '\x00', '\x00',
                         '\x01', '\x02'};
    out.write(torn, sizeof(torn));
  }
  {
    srv::SubmissionJournal journal(path);
    ASSERT_EQ(journal.recovered().size(), 2u);
    EXPECT_GT(journal.truncated_bytes(), 0u);
    // The torn bytes are gone from disk; appending resumes cleanly.
    journal.append_state(1, srv::CampaignState::kQueued);
  }
  srv::SubmissionJournal journal(path);
  ASSERT_EQ(journal.recovered().size(), 3u);
  EXPECT_EQ(journal.truncated_bytes(), 0u);
  EXPECT_EQ(journal.recovered()[2].state, srv::CampaignState::kQueued);
}

TEST(SubmissionJournal, ParseStopsAtCorruptFrameAndNeverResyncs) {
  const std::string dir = temp_dir("journal_corrupt");
  const std::string path = dir + "/journal.bin";
  std::size_t first_frame_end = 0;
  {
    srv::SubmissionJournal journal(path);
    journal.append_submit(1, "a", "", {}, "x\n");
    first_frame_end = read_file(path).size();
    journal.append_state(1, srv::CampaignState::kDone);
    journal.append_state(1, srv::CampaignState::kQueued);
  }
  std::string bytes = read_file(path);
  // Flip one payload byte of the middle record: its CRC fails, and the
  // third (intact) record after it must NOT be resynchronized to.
  bytes[first_frame_end + 12] ^= 0x55;
  std::size_t valid = 0;
  const auto records = srv::SubmissionJournal::parse(bytes, &valid);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, srv::JournalRecordType::kSubmit);
  EXPECT_EQ(valid, first_frame_end);
}

// ---------------------------------------------------------------------------
// Submission parsing

TEST(ParseSubmission, ExtractsLeaseAndBlanksCampaignLinesInPlace) {
  const std::string body =
      "campaign.client = alice\n"
      "campaign.key = job-1\n"
      "campaign.wall_budget_s = 30\n"
      "campaign.event_budget = 1000\n"
      "campaign.rss_budget_mb = 512\n" +
      std::string(kScenarioText);
  const srv::CampaignSpec spec = srv::parse_submission(body);
  EXPECT_EQ(spec.client, "alice");
  EXPECT_EQ(spec.idem_key, "job-1");
  EXPECT_DOUBLE_EQ(spec.quota.wall_budget_s, 30.0);
  EXPECT_EQ(spec.quota.event_budget, 1000u);
  EXPECT_DOUBLE_EQ(spec.quota.rss_budget_mb, 512.0);
  EXPECT_EQ(spec.config.fleet.num_servers, 4u);
  EXPECT_EQ(spec.config.num_vms, 12u);
  // campaign.* lines are blanked in place, so the stored text has the
  // same number of lines as the submission.
  EXPECT_EQ(std::count(spec.config_text.begin(), spec.config_text.end(), '\n'),
            std::count(body.begin(), body.end(), '\n'));
  EXPECT_EQ(spec.config_text.find("campaign."), std::string::npos);
  // The server owns robustness: client [checkpoint]/[audit] wiring is
  // cleared.
  EXPECT_TRUE(spec.config.run.checkpoint_out.empty());
}

TEST(ParseSubmission, UnknownCampaignKeyReportsLineNumber) {
  const std::string body = std::string(kScenarioText) +
                           "campaign.colour = blue\n";  // line 6
  try {
    (void)srv::parse_submission(body);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("campaign.colour"),
              std::string::npos)
        << ex.what();
    EXPECT_NE(std::string(ex.what()).find("line 6"), std::string::npos)
        << ex.what();
  }
}

TEST(ParseSubmission, ScenarioErrorsKeepTheClientsLineNumbers) {
  // The bogus scenario key sits on line 3 of the client's body; blanking
  // the campaign.* line above it must not shift the reported number.
  const std::string body =
      "campaign.client = bob\n"
      "servers = 4\n"
      "definitely_not_a_key = 1\n";
  try {
    (void)srv::parse_submission(body);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("line 3"), std::string::npos)
        << ex.what();
  }
}

TEST(ParseSubmission, NegativeBudgetRejected) {
  EXPECT_THROW((void)srv::parse_submission(std::string(kScenarioText) +
                                           "campaign.wall_budget_s = -1\n"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Watchdog

TEST(Watchdog, ReportsFirstExceededBudget) {
  srv::CampaignQuota quota;
  quota.event_budget = 100;
  srv::Watchdog dog(quota);
  dog.begin_window(1000);
  dog.record(0.5, 1050, 10.0);
  EXPECT_EQ(dog.violation(), "");
  dog.record(0.5, 1150, 10.0);  // 150 events past the base
  EXPECT_NE(dog.violation().find("event budget exceeded"), std::string::npos);
  // A fresh window (as granted by an explicit resume) clears the slate.
  dog.begin_window(1150);
  EXPECT_EQ(dog.violation(), "");
}

TEST(Watchdog, ZeroBudgetsAreUnlimited) {
  srv::Watchdog dog;  // all budgets 0
  dog.begin_window(0);
  dog.record(1e9, 1u << 30, 1e9);
  EXPECT_EQ(dog.violation(), "");
}

TEST(Watchdog, WallAndRssBudgets) {
  srv::CampaignQuota quota;
  quota.wall_budget_s = 1.0;
  srv::Watchdog dog(quota);
  dog.begin_window(0);
  dog.record(2.0, 0, 0.0);
  EXPECT_NE(dog.violation().find("wall-clock budget exceeded"),
            std::string::npos);

  quota = {};
  quota.rss_budget_mb = 100.0;
  dog.set_quota(quota);
  dog.begin_window(0);
  dog.record(0.0, 0, 250.0);
  EXPECT_NE(dog.violation().find("RSS budget exceeded"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Campaign server: state machine and API (exercised in-process through
// handle(), exactly as the HTTP listener dispatches).

TEST(CampaignServer, SubmittedCampaignRunsToDoneByteIdenticalToOneShot) {
  srv::CampaignServer server(fast_config(temp_dir("run_to_done")));
  server.start();

  const auto response =
      server.handle(make_request("POST", "/campaigns", kScenarioText));
  ASSERT_EQ(status_of(response), 202) << response.body;
  EXPECT_NE(response.body.find("\"id\":1"), std::string::npos);

  ASSERT_TRUE(server.wait_idle(30.0));
  ASSERT_EQ(server.state_of(1), srv::CampaignState::kDone);

  const auto status = server.handle(make_request("GET", "/campaigns/1"));
  EXPECT_EQ(status_of(status), 200);
  EXPECT_NE(status.body.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(status.body.find("\"percent\":100"), std::string::npos);

  EXPECT_EQ(read_file(server.events_path(1)), one_shot_events(kScenarioText));
  server.drain();
}

TEST(CampaignServer, MalformedSubmissionIs400WithLineNumber) {
  srv::CampaignServer server(fast_config(temp_dir("bad_submit")));
  server.start();
  const auto response = server.handle(
      make_request("POST", "/campaigns", "servers = 4\nwat = 1\n"));
  EXPECT_EQ(status_of(response), 400);
  EXPECT_NE(response.body.find("line"), std::string::npos) << response.body;
  server.drain();
}

TEST(CampaignServer, OverCapacityIs429WithRetryAfter) {
  srv::ServerConfig config = fast_config(temp_dir("capacity"));
  config.workers = 1;
  config.queue_capacity = 1;
  config.retry_after_s = 7;
  srv::CampaignServer server(config);
  server.start();

  // A longer horizon keeps the first campaign on the single worker while
  // the second sits in the queue and the third bounces.
  const std::string slow = "servers = 8\nvms = 60\nhorizon_hours = 24\n";
  EXPECT_EQ(status_of(server.handle(make_request("POST", "/campaigns", slow))),
            202);
  EXPECT_EQ(status_of(server.handle(make_request("POST", "/campaigns", slow))),
            202);
  const auto third =
      server.handle(make_request("POST", "/campaigns", slow));
  EXPECT_EQ(status_of(third), 429);
  bool saw_retry_after = false;
  for (const auto& header : third.extra_headers) {
    if (header.find("Retry-After: 7") != std::string::npos)
      saw_retry_after = true;
  }
  EXPECT_TRUE(saw_retry_after);

  // Cancel everything so drain() does not wait out 24 sim-hours.
  EXPECT_EQ(status_of(server.handle(make_request("DELETE", "/campaigns/2"))),
            200);  // queued: cancelled immediately
  const auto cancel_running =
      server.handle(make_request("DELETE", "/campaigns/1"));
  EXPECT_TRUE(status_of(cancel_running) == 200 ||
              status_of(cancel_running) == 202);
  ASSERT_TRUE(server.wait_idle(30.0));
  server.drain();
  EXPECT_EQ(server.state_of(2), srv::CampaignState::kCancelled);
}

TEST(CampaignServer, DuplicateIdempotencyKeyReturnsSameCampaign) {
  srv::CampaignServer server(fast_config(temp_dir("idempotency")));
  server.start();
  const std::string body =
      "campaign.client = alice\ncampaign.key = job-1\n" +
      std::string(kScenarioText);
  const auto first = server.handle(make_request("POST", "/campaigns", body));
  ASSERT_EQ(status_of(first), 202);
  const auto dup = server.handle(make_request("POST", "/campaigns", body));
  EXPECT_EQ(status_of(dup), 200);
  EXPECT_NE(dup.body.find("\"id\":1"), std::string::npos) << dup.body;
  EXPECT_NE(dup.body.find("\"duplicate\":true"), std::string::npos);
  // A different client may reuse the key: idempotency is per client.
  const std::string other =
      "campaign.client = bob\ncampaign.key = job-1\n" +
      std::string(kScenarioText);
  const auto second = server.handle(make_request("POST", "/campaigns", other));
  EXPECT_EQ(status_of(second), 202);
  EXPECT_NE(second.body.find("\"id\":2"), std::string::npos) << second.body;
  ASSERT_TRUE(server.wait_idle(30.0));
  server.drain();
}

TEST(CampaignServer, QuotaEvictionThenResumeMatchesOneShotByteForByte) {
  srv::CampaignServer server(fast_config(temp_dir("evict_resume")));
  server.start();

  const std::string body =
      "campaign.event_budget = 300\n" + std::string(kScenarioText);
  ASSERT_EQ(status_of(server.handle(make_request("POST", "/campaigns", body))),
            202);
  ASSERT_TRUE(wait_for_state(server, 1, srv::CampaignState::kEvicted));

  const auto status = server.handle(make_request("GET", "/campaigns/1"));
  EXPECT_NE(status.body.find("\"state\":\"evicted\""), std::string::npos);
  EXPECT_NE(status.body.find("event budget exceeded"), std::string::npos);
  EXPECT_NE(status.body.find("\"has_checkpoint\":true"), std::string::npos);

  // Resuming an evicted campaign opens a fresh budget window; with the
  // same budget and only ~300 events left it still evicts again or
  // finishes — resume repeatedly until done, as a client would.
  for (int rounds = 0; rounds < 20; ++rounds) {
    if (server.state_of(1) == srv::CampaignState::kDone) break;
    if (server.state_of(1) == srv::CampaignState::kEvicted) {
      const auto resumed =
          server.handle(make_request("POST", "/campaigns/1/resume"));
      ASSERT_EQ(status_of(resumed), 202) << resumed.body;
    }
    ASSERT_TRUE(server.wait_idle(30.0));
  }
  ASSERT_EQ(server.state_of(1), srv::CampaignState::kDone);

  EXPECT_EQ(read_file(server.events_path(1)), one_shot_events(kScenarioText));

  // Resume of a terminal campaign is a conflict.
  EXPECT_EQ(status_of(server.handle(make_request("POST",
                                                 "/campaigns/1/resume"))),
            409);
  server.drain();
}

TEST(CampaignServer, CancelAndRouteErrors) {
  srv::CampaignServer server(fast_config(temp_dir("routes")));
  server.start();
  EXPECT_EQ(status_of(server.handle(make_request("GET", "/campaigns/99"))),
            404);
  EXPECT_EQ(status_of(server.handle(make_request("DELETE", "/campaigns/99"))),
            404);
  EXPECT_EQ(status_of(server.handle(make_request("PUT", "/campaigns"))), 405);
  EXPECT_EQ(status_of(server.handle(make_request("GET", "/nope"))), 404);
  EXPECT_EQ(server.handle(make_request("GET", "/healthz")).body, "ok\n");

  ASSERT_EQ(status_of(server.handle(
                make_request("POST", "/campaigns", kScenarioText))),
            202);
  ASSERT_TRUE(server.wait_idle(30.0));
  // Terminal cancel is a conflict.
  EXPECT_EQ(status_of(server.handle(make_request("DELETE", "/campaigns/1"))),
            409);
  const auto list = server.handle(make_request("GET", "/campaigns"));
  EXPECT_EQ(status_of(list), 200);
  EXPECT_NE(list.body.find("\"campaigns\":["), std::string::npos);
  const auto metrics = server.handle(make_request("GET", "/metrics"));
  EXPECT_NE(metrics.body.find("ecocloud_server_submissions_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("campaign=\"1\""), std::string::npos);
  server.drain();
}

TEST(CampaignServer, DrainCheckpointsInFlightAndRestartCompletesThem) {
  const std::string dir = temp_dir("drain_restart");
  // Paper-scale fleet so the run spans hundreds of slice boundaries and
  // the drain below reliably catches it mid-flight.
  const std::string slow =
      "servers = 400\nvms = 6000\nhorizon_hours = 24\nseed = 11\n";
  {
    srv::CampaignServer server(fast_config(dir));
    server.start();
    ASSERT_EQ(
        status_of(server.handle(make_request("POST", "/campaigns", slow))),
        202);
    // submit() dispatches synchronously, so the campaign is already
    // running; drain immediately to interrupt it mid-horizon.
    server.drain();
    // Mid-run the drain pauses it at a safe point with a checkpoint on
    // disk; on a starved machine drain can instead win the race to the
    // worker before the first slice, which re-queues the campaign
    // untouched. Both must survive the restart below identically.
    const auto drained = server.state_of(1);
    ASSERT_TRUE(drained.has_value());
    ASSERT_TRUE(*drained == srv::CampaignState::kPaused ||
                *drained == srv::CampaignState::kQueued)
        << static_cast<int>(*drained);
    EXPECT_EQ(status_of(server.handle(
                  make_request("POST", "/campaigns", kScenarioText))),
              503);
  }
  srv::CampaignServer server(fast_config(dir));
  server.start();
  EXPECT_EQ(server.recovered_campaigns(), 1u);
  ASSERT_TRUE(server.wait_idle(60.0));
  ASSERT_EQ(server.state_of(1), srv::CampaignState::kDone);
  EXPECT_EQ(read_file(server.events_path(1)), one_shot_events(slow));
  server.drain();
}

TEST(CampaignServer, TornJournalTailDoesNotPoisonRecovery) {
  const std::string dir = temp_dir("torn_recovery");
  {
    srv::CampaignServer server(fast_config(dir));
    server.start();
    ASSERT_EQ(status_of(server.handle(
                  make_request("POST", "/campaigns", kScenarioText))),
              202);
    ASSERT_TRUE(server.wait_idle(30.0));
    server.drain();
  }
  // Simulate a SIGKILL mid-append: garbage on the journal tail.
  {
    std::ofstream out(dir + "/journal.bin", std::ios::binary | std::ios::app);
    out.write("ECJL\x7f\x00\x00\x00partial", 15);
  }
  srv::CampaignServer server(fast_config(dir));
  server.start();
  EXPECT_EQ(server.recovered_campaigns(), 1u);
  // The completed campaign replays as done and is not re-run.
  EXPECT_EQ(server.state_of(1), srv::CampaignState::kDone);
  server.drain();
}

TEST(CampaignServer, MemoryPressurePausesLargestAndAutoResumes) {
  srv::ServerConfig config = fast_config(temp_dir("pressure"));
  config.workers = 1;
  config.rss_high_mb = 100.0;
  config.rss_low_mb = 50.0;
  config.pressure_poll_ms = 10;
  // Pressure is already high when the campaign starts: the controller
  // must pause it at an early slice boundary, long before the horizon.
  auto rss = std::make_shared<std::atomic<double>>(200.0);
  config.rss_probe = [rss] { return rss->load(); };
  srv::CampaignServer server(config);
  server.start();

  const std::string slow =
      "servers = 400\nvms = 6000\nhorizon_hours = 24\nseed = 11\n";
  ASSERT_EQ(status_of(server.handle(make_request("POST", "/campaigns", slow))),
            202);
  ASSERT_TRUE(wait_for_state(server, 1, srv::CampaignState::kPaused));
  const auto paused = server.handle(make_request("GET", "/campaigns/1"));
  EXPECT_NE(paused.body.find("memory pressure"), std::string::npos)
      << paused.body;

  // Pressure clears: the campaign is transparently re-queued and runs to
  // completion (paused campaigns don't count as busy, so poll for done
  // rather than wait_idle, which would return before the requeue).
  rss->store(10.0);
  ASSERT_TRUE(wait_for_state(server, 1, srv::CampaignState::kDone, 60.0));
  EXPECT_EQ(read_file(server.events_path(1)), one_shot_events(slow));
  server.drain();
}

TEST(CampaignServer, ConcurrentSubmitsRacingDrainNeverLoseAnAck) {
  srv::ServerConfig config = fast_config(temp_dir("race_drain"));
  config.workers = 2;
  config.queue_capacity = 64;
  srv::CampaignServer server(config);
  server.start();

  // Several clients hammer POST /campaigns while the server drains.
  // Every response must be a definite verdict (202 accepted, 429 full,
  // 503 draining) and every 202 must name a campaign the server still
  // knows after the drain — an accepted campaign is never lost.
  std::atomic<int> accepted{0};
  std::atomic<int> refused{0};
  std::atomic<bool> bad_status{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&server, &accepted, &refused, &bad_status, c] {
      for (int i = 0; i < 8; ++i) {
        const std::string body = "campaign.client = c" + std::to_string(c) +
                                 "\n" + std::string(kScenarioText);
        const auto response =
            server.handle(make_request("POST", "/campaigns", body));
        if (response.status == 202)
          ++accepted;
        else if (response.status == 429 || response.status == 503)
          ++refused;
        else
          bad_status = true;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.drain();
  for (auto& client : clients) client.join();
  EXPECT_FALSE(bad_status);
  EXPECT_GE(refused.load(), 0);

  // Restart on the same journal: every acknowledged campaign replays.
  srv::CampaignServer restarted(fast_config(config.data_dir));
  restarted.start();
  EXPECT_EQ(restarted.recovered_campaigns(),
            static_cast<std::size_t>(accepted.load()));
  ASSERT_TRUE(restarted.wait_idle(120.0));
  for (std::uint64_t id = 1;
       id <= static_cast<std::uint64_t>(accepted.load()); ++id) {
    EXPECT_EQ(restarted.state_of(id), srv::CampaignState::kDone) << id;
  }
  restarted.drain();
}
