// Tests for the scenario harness itself (fleet building, warm-up handling,
// message accounting, centralized-algorithm wiring).

#include <gtest/gtest.h>

#include "ecocloud/scenario/scenario.hpp"

using namespace ecocloud;

TEST(Fleet, BuildsRoundRobinMix) {
  dc::DataCenter d;
  scenario::FleetConfig fleet;
  fleet.num_servers = 7;
  fleet.core_mix = {4, 6, 8};
  fleet.core_mhz = 2000.0;
  scenario::build_fleet(d, fleet);
  ASSERT_EQ(d.num_servers(), 7u);
  EXPECT_EQ(d.server(0).num_cores(), 4u);
  EXPECT_EQ(d.server(1).num_cores(), 6u);
  EXPECT_EQ(d.server(2).num_cores(), 8u);
  EXPECT_EQ(d.server(3).num_cores(), 4u);
  EXPECT_EQ(d.server(6).num_cores(), 4u);
  // All hibernated initially.
  EXPECT_EQ(d.active_server_count(), 0u);
  // RAM scales with cores.
  EXPECT_DOUBLE_EQ(d.server(2).ram_capacity_mb(), 8 * fleet.ram_per_core_mb);
}

TEST(Fleet, PaperMixCapacity) {
  dc::DataCenter d;
  scenario::build_fleet(d, scenario::FleetConfig{});
  // 400 servers round-robin over {4,6,8} cores at 2 GHz: 134+133+133
  // servers -> 2,398 cores -> 4.796e6 MHz.
  EXPECT_EQ(d.num_servers(), 400u);
  EXPECT_DOUBLE_EQ(d.total_capacity_mhz(), 2398.0 * 2000.0);
}

TEST(DailyScenarioHarness, WarmupResetsAccounting) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 30;
  config.num_vms = 400;
  config.warmup_s = 2.0 * sim::kHour;
  config.horizon_s = 4.0 * sim::kHour;
  scenario::DailyScenario daily(config);
  daily.run();
  const auto& d = daily.datacenter();
  // Accounting covers only the 2 post-warm-up hours.
  EXPECT_NEAR(d.vm_seconds(), 400.0 * 2.0 * sim::kHour, 400.0 * 60.0);
  // The first post-warm-up metrics window must not be negative (rebase).
  for (const auto& s : daily.collector().samples()) {
    EXPECT_GE(s.window_energy_j, 0.0) << "t=" << s.time;
    EXPECT_GE(s.overload_percent, 0.0) << "t=" << s.time;
  }
}

TEST(DailyScenarioHarness, MessageLogAccumulates) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 30;
  config.num_vms = 400;
  config.horizon_s = 2.0 * sim::kHour;
  scenario::DailyScenario daily(config);
  daily.run();
  const core::MessageLog& messages = daily.ecocloud()->messages();
  // Every VM needed at least one invitation round and one placement.
  EXPECT_GE(messages.invitation_rounds, 400u);
  EXPECT_GE(messages.placement_commands, 400u);
  EXPECT_GT(messages.wake_commands, 0u);  // empty DC at start
  EXPECT_EQ(messages.total(),
            messages.invitations_sent + messages.volunteer_replies +
                messages.placement_commands + messages.wake_commands +
                messages.migration_commands);
}

TEST(DailyScenarioHarness, GroupInvitationsReduceTraffic) {
  auto make = [](std::size_t group) {
    scenario::DailyConfig config;
    config.fleet.num_servers = 40;
    config.num_vms = 600;
    config.horizon_s = 3.0 * sim::kHour;
    config.params.invite_group_size = group;
    return config;
  };
  scenario::DailyScenario broadcast(make(0));
  scenario::DailyScenario grouped(make(8));
  broadcast.run();
  grouped.run();
  const double broadcast_per_round =
      static_cast<double>(broadcast.ecocloud()->messages().invitations_sent) /
      static_cast<double>(broadcast.ecocloud()->messages().invitation_rounds);
  const double grouped_per_round =
      static_cast<double>(grouped.ecocloud()->messages().invitations_sent) /
      static_cast<double>(grouped.ecocloud()->messages().invitation_rounds);
  EXPECT_LE(grouped_per_round, 8.0 + 1e-9);
  EXPECT_GT(broadcast_per_round, grouped_per_round);
}

TEST(DailyScenarioHarness, MaxInflightTracked) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 40;
  config.num_vms = 600;
  config.warmup_s = sim::kHour;
  config.horizon_s = 6.0 * sim::kHour;
  scenario::DailyScenario daily(config);
  daily.run();
  const auto& d = daily.datacenter();
  if (d.total_migrations() > 0) {
    EXPECT_GE(d.max_inflight_migrations(), 1u);
  }
  EXPECT_LE(d.inflight_migrations(), d.max_inflight_migrations());
}

TEST(CentralizedScenario, ConsolidatesSameWorkload) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 30;
  config.num_vms = 400;
  config.horizon_s = 6.0 * sim::kHour;
  baseline::CentralizedParams central;
  scenario::DailyScenario daily(config, scenario::Algorithm::kCentralized, central);
  daily.run();
  EXPECT_EQ(daily.datacenter().placed_vm_count(), 400u);
  EXPECT_LT(daily.datacenter().active_server_count(), 30u);
  EXPECT_EQ(daily.ecocloud(), nullptr);
  EXPECT_NE(daily.centralized(), nullptr);
}

TEST(ConsolidationScenarioHarness, LambdaTracksDiurnal) {
  scenario::ConsolidationConfig config;
  scenario::ConsolidationScenario cons(config);
  const double lambda_peak = cons.lambda(14.0 * sim::kHour);
  const double lambda_trough = cons.lambda(2.0 * sim::kHour);
  EXPECT_GT(lambda_peak, lambda_trough);
  EXPECT_NEAR(lambda_peak / lambda_trough,
              config.workload.diurnal.max() / config.workload.diurnal.min(), 1e-9);
  EXPECT_DOUBLE_EQ(cons.nu(), 1.0 / config.mean_lifetime_s);
}

TEST(ConsolidationScenarioHarness, MeanVmShareConsistent) {
  scenario::ConsolidationConfig config;
  scenario::ConsolidationScenario cons(config);
  // mean share = mean demand / server capacity, with the scenario's 1600
  // MHz reference and 6 x 2 GHz servers.
  const double expected = trace::WorkloadModel::expected_average_percent() / 100.0 *
                          1600.0 / 12000.0;
  EXPECT_NEAR(cons.mean_vm_share(), expected, 1e-12);
}

TEST(StaticScenario, NoConsolidationBaseline) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 20;
  config.num_vms = 200;
  config.horizon_s = 2.0 * sim::kHour;
  scenario::DailyScenario daily(config, scenario::Algorithm::kStatic);
  daily.run();
  const auto& d = daily.datacenter();
  // Everything active, round-robin spread, nothing moves.
  EXPECT_EQ(d.active_server_count(), 20u);
  EXPECT_EQ(d.placed_vm_count(), 200u);
  EXPECT_EQ(d.total_migrations(), 0u);
  EXPECT_EQ(d.total_hibernations(), 0u);
  for (const auto& server : d.servers()) {
    EXPECT_EQ(server.vm_count(), 10u);
  }
}

TEST(StaticScenario, UsesMoreEnergyThanEcoCloud) {
  auto make = [](scenario::Algorithm algorithm) {
    scenario::DailyConfig config;
    config.fleet.num_servers = 30;
    config.num_vms = 400;
    config.horizon_s = 6.0 * sim::kHour;
    config.seed = 5;
    return scenario::DailyScenario(config, algorithm);
  };
  auto eco = make(scenario::Algorithm::kEcoCloud);
  auto flat = make(scenario::Algorithm::kStatic);
  eco.run();
  flat.run();
  EXPECT_LT(eco.datacenter().energy_joules(),
            0.8 * flat.datacenter().energy_joules());
}

TEST(ExternalTraces, DriveTheDailyScenario) {
  // Two flat traces: one large VM, one small, for 3 hours.
  std::vector<std::vector<float>> series{
      std::vector<float>(38, 40.0f),  // 800 MHz at 2 GHz reference
      std::vector<float>(38, 10.0f),  // 200 MHz
  };
  auto traces = trace::TraceSet::from_series(series, 300.0, 2000.0, 512.0);

  scenario::DailyConfig config;
  config.fleet.num_servers = 4;
  config.num_vms = 999;  // overridden by the trace count
  config.horizon_s = 3.0 * sim::kHour;
  scenario::DailyScenario daily(config, std::move(traces));
  daily.run();
  const auto& d = daily.datacenter();
  EXPECT_EQ(d.num_vms(), 2u);
  EXPECT_EQ(d.placed_vm_count(), 2u);
  // Constant demands: total demand equals the sum of the two traces.
  EXPECT_NEAR(d.total_demand_mhz(), 1000.0, 1e-6);
}
