// Unit tests for the synthetic workload substrate: diurnal pattern,
// workload model calibration, trace sets, arrival processes, rate
// estimation.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ecocloud/stats/histogram.hpp"
#include "ecocloud/stats/welford.hpp"
#include "ecocloud/trace/arrivals.hpp"
#include "ecocloud/trace/diurnal.hpp"
#include "ecocloud/trace/rate_estimator.hpp"
#include "ecocloud/trace/streaming_traces.hpp"
#include "ecocloud/trace/trace_set.hpp"
#include "ecocloud/trace/workload_model.hpp"

namespace trace = ecocloud::trace;
namespace stats = ecocloud::stats;
using ecocloud::util::Rng;

// ------------------------------------------------------------------- diurnal

TEST(Diurnal, PeaksAtConfiguredHour) {
  trace::DiurnalPattern g(0.3, 14.0);
  EXPECT_NEAR(g.value(14.0 * 3600.0), 1.3, 1e-12);
  EXPECT_NEAR(g.value(2.0 * 3600.0), 0.7, 1e-12);  // trough 12 h later
}

TEST(Diurnal, MeanOverDayIsOne) {
  trace::DiurnalPattern g(0.25, 10.0);
  double acc = 0.0;
  const int n = 24 * 60;
  for (int i = 0; i < n; ++i) acc += g.value(i * 60.0);
  EXPECT_NEAR(acc / n, 1.0, 1e-6);
}

TEST(Diurnal, PeriodIs24Hours) {
  trace::DiurnalPattern g(0.2, 14.0);
  for (double h : {0.0, 5.5, 13.0, 23.9}) {
    EXPECT_NEAR(g.value(h * 3600.0), g.value((h + 24.0) * 3600.0), 1e-12);
  }
}

TEST(Diurnal, BoundsAndValidation) {
  trace::DiurnalPattern g(0.22, 14.0);
  EXPECT_DOUBLE_EQ(g.min(), 0.78);
  EXPECT_DOUBLE_EQ(g.max(), 1.22);
  EXPECT_THROW(trace::DiurnalPattern(1.0, 14.0), std::invalid_argument);
  EXPECT_THROW(trace::DiurnalPattern(0.2, 24.0), std::invalid_argument);
}

TEST(Diurnal, ZeroAmplitudeIsFlat) {
  trace::DiurnalPattern g(0.0, 14.0);
  for (double h = 0.0; h < 24.0; h += 1.0) {
    EXPECT_DOUBLE_EQ(g.value(h * 3600.0), 1.0);
  }
}

// ------------------------------------------------------------ workload model

TEST(WorkloadModel, BinWeightsNormalizableAndDecreasingTail) {
  const auto& w = trace::WorkloadModel::average_bin_weights();
  ASSERT_EQ(w.size(), 20u);
  double total = 0.0;
  for (double x : w) {
    EXPECT_GT(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 0.05);
  // Mass concentrated below 20% (paper Fig. 4).
  EXPECT_GT(w[0] + w[1] + w[2] + w[3], 0.6);
  // Tail decreasing beyond the mode.
  for (std::size_t i = 2; i + 1 < w.size(); ++i) {
    EXPECT_GE(w[i], w[i + 1]);
  }
}

TEST(WorkloadModel, ExpectedAverageMatchesSampling) {
  trace::WorkloadModel model;
  Rng rng(1);
  stats::Welford acc;
  for (int i = 0; i < 50000; ++i) {
    acc.add(model.sample_average_percent(rng));
  }
  EXPECT_NEAR(acc.mean(), trace::WorkloadModel::expected_average_percent(), 0.3);
  EXPECT_GE(acc.min(), 0.0);
  EXPECT_LE(acc.max(), 100.0);
}

TEST(WorkloadModel, Fig4ShapeMostVmsUnder20Percent) {
  trace::WorkloadModel model;
  Rng rng(2);
  stats::Histogram h(0.0, 100.0, 20);
  for (int i = 0; i < 20000; ++i) h.add(model.sample_average_percent(rng));
  EXPECT_GT(h.fraction_within(0.0, 20.0), 0.6);
  EXPECT_LT(h.fraction_within(50.0, 100.0), 0.12);
}

TEST(WorkloadModel, SeriesWithinBoundsAndRightLength) {
  trace::WorkloadModel model;
  Rng rng(3);
  const auto series = model.generate_series(rng, 15.0, 500);
  ASSERT_EQ(series.size(), 500u);
  for (float x : series) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LE(x, 100.0f);
  }
}

TEST(WorkloadModel, Fig5DeviationsMostlyWithinTenPoints) {
  trace::WorkloadConfig cfg;
  trace::WorkloadModel model(cfg);
  Rng rng(4);
  std::size_t total = 0, within = 0;
  for (int vm = 0; vm < 300; ++vm) {
    const double avg = model.sample_average_percent(rng);
    const auto series = model.generate_series(rng, avg, 576);
    for (float x : series) {
      ++total;
      if (std::fabs(static_cast<double>(x) - avg) < 10.0) ++within;
    }
  }
  // Paper: ~94% of deviations below 10 points.
  EXPECT_GT(static_cast<double>(within) / static_cast<double>(total), 0.85);
}

TEST(WorkloadModel, DeviationsCenteredNearZero) {
  trace::WorkloadModel model;
  Rng rng(5);
  stats::Welford dev;
  for (int vm = 0; vm < 200; ++vm) {
    const double avg = model.sample_average_percent(rng);
    for (float x : model.generate_series(rng, avg, 288)) {
      dev.add(static_cast<double>(x) - avg);
    }
  }
  EXPECT_NEAR(dev.mean(), 0.0, 1.0);
}

TEST(WorkloadModel, SeriesAutocorrelated) {
  trace::WorkloadConfig cfg;
  cfg.diurnal = trace::DiurnalPattern(0.0, 14.0);  // isolate the AR(1) part
  trace::WorkloadModel model(cfg);
  Rng rng(6);
  const auto series = model.generate_series(rng, 30.0, 2000);
  // Lag-1 autocorrelation of deviations should be near rho = 0.7.
  double mean = 0.0;
  for (float x : series) mean += x;
  mean /= static_cast<double>(series.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i + 1 < series.size(); ++i) {
    num += (series[i] - mean) * (series[i + 1] - mean);
    den += (series[i] - mean) * (series[i] - mean);
  }
  EXPECT_NEAR(num / den, 0.7, 0.1);
}

TEST(WorkloadModel, PercentToMhz) {
  trace::WorkloadModel model;
  EXPECT_DOUBLE_EQ(model.percent_to_mhz(50.0), 1000.0);
}

TEST(WorkloadModel, ValidatesConfig) {
  trace::WorkloadConfig bad;
  bad.ar1_rho = 1.0;
  EXPECT_THROW(trace::WorkloadModel{bad}, std::invalid_argument);
  trace::WorkloadConfig bad2;
  bad2.reference_mhz = 0.0;
  EXPECT_THROW(trace::WorkloadModel{bad2}, std::invalid_argument);
}

// ----------------------------------------------------------------- trace set

TEST(TraceSet, GenerateShapes) {
  trace::WorkloadModel model;
  Rng rng(7);
  const auto set = trace::TraceSet::generate(model, 50, 100, rng);
  EXPECT_EQ(set.num_vms(), 50u);
  EXPECT_EQ(set.num_steps(), 100u);
  EXPECT_DOUBLE_EQ(set.sample_period_s(), 300.0);
  for (std::size_t v = 0; v < set.num_vms(); ++v) {
    EXPECT_GE(set.average_percent(v), 0.0);
    EXPECT_LE(set.average_percent(v), 100.0);
    EXPECT_GE(set.ram_mb(v), 512.0);
  }
}

TEST(TraceSet, StepsWrapAround) {
  trace::WorkloadModel model;
  Rng rng(8);
  const auto set = trace::TraceSet::generate(model, 3, 10, rng);
  EXPECT_DOUBLE_EQ(set.percent_at(0, 3), set.percent_at(0, 13));
}

TEST(TraceSet, StepAtMapsTime) {
  trace::WorkloadModel model;
  Rng rng(9);
  const auto set = trace::TraceSet::generate(model, 1, 10, rng);
  EXPECT_EQ(set.step_at(0.0), 0u);
  EXPECT_EQ(set.step_at(299.9), 0u);
  EXPECT_EQ(set.step_at(300.0), 1u);
  EXPECT_EQ(set.step_at(3000.0), 10u);
}

TEST(TraceSet, DemandMhzConsistentWithPercent) {
  trace::WorkloadModel model;
  Rng rng(10);
  const auto set = trace::TraceSet::generate(model, 5, 5, rng);
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_NEAR(set.demand_mhz_at(v, 2),
                set.percent_at(v, 2) / 100.0 * set.reference_mhz(), 1e-9);
  }
}

TEST(TraceSet, CsvRoundTrip) {
  trace::WorkloadModel model;
  Rng rng(11);
  const auto set = trace::TraceSet::generate(model, 4, 6, rng);
  std::stringstream buffer;
  set.write_csv(buffer);
  const auto loaded = trace::TraceSet::read_csv(buffer);
  EXPECT_EQ(loaded.num_vms(), set.num_vms());
  EXPECT_EQ(loaded.num_steps(), set.num_steps());
  for (std::size_t v = 0; v < set.num_vms(); ++v) {
    EXPECT_NEAR(loaded.average_percent(v), set.average_percent(v), 1e-4);
    for (std::size_t k = 0; k < set.num_steps(); ++k) {
      EXPECT_NEAR(loaded.percent_at(v, k), set.percent_at(v, k), 1e-3);
    }
  }
}

TEST(TraceSet, ReadRejectsMalformed) {
  std::istringstream empty("");
  EXPECT_THROW(trace::TraceSet::read_csv(empty), std::invalid_argument);
  std::istringstream bad_header("1,2\n");
  EXPECT_THROW(trace::TraceSet::read_csv(bad_header), std::invalid_argument);
}

TEST(TraceSet, TotalDemand) {
  trace::WorkloadModel model;
  Rng rng(12);
  const auto set = trace::TraceSet::generate(model, 10, 3, rng);
  double expected = 0.0;
  for (std::size_t v = 0; v < 10; ++v) expected += set.demand_mhz_at(v, 1);
  EXPECT_NEAR(set.total_demand_mhz_at(1), expected, 1e-9);
}

// ------------------------------------------------------------------ arrivals

TEST(PoissonArrivals, HomogeneousRateMatches) {
  trace::PoissonArrivals arrivals([](double) { return 0.1; }, 0.1);
  Rng rng(13);
  double t = 0.0;
  int count = 0;
  while (t < 100000.0) {
    t = arrivals.next_after(t, rng);
    ++count;
  }
  EXPECT_NEAR(count / 100000.0, 0.1, 0.005);
}

TEST(PoissonArrivals, ThinningTracksTimeVaryingRate) {
  // Rate 0.2 in the first half, 0.02 in the second.
  trace::PoissonArrivals arrivals(
      [](double t) { return t < 50000.0 ? 0.2 : 0.02; }, 0.2);
  Rng rng(14);
  double t = 0.0;
  int first = 0, second = 0;
  while (t < 100000.0) {
    t = arrivals.next_after(t, rng);
    if (t < 50000.0) {
      ++first;
    } else if (t < 100000.0) {
      ++second;
    }
  }
  EXPECT_NEAR(first / 50000.0, 0.2, 0.01);
  EXPECT_NEAR(second / 50000.0, 0.02, 0.005);
}

TEST(PoissonArrivals, StrictlyIncreasing) {
  trace::PoissonArrivals arrivals([](double) { return 1.0; }, 1.0);
  Rng rng(15);
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double next = arrivals.next_after(t, rng);
    EXPECT_GT(next, t);
    t = next;
  }
}

TEST(PoissonArrivals, RejectsRateAboveEnvelope) {
  trace::PoissonArrivals arrivals([](double) { return 2.0; }, 1.0);
  Rng rng(16);
  EXPECT_THROW(arrivals.next_after(0.0, rng), std::invalid_argument);
}

TEST(ExponentialLifetime, MeanMatches) {
  Rng rng(17);
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += trace::exponential_lifetime(1.0 / 3600.0, rng);
  EXPECT_NEAR(acc / n, 3600.0, 60.0);
}

// ------------------------------------------------------------ rate estimator

TEST(RateEstimator, LambdaPerWindow) {
  trace::RateEstimator est(100.0);
  for (int i = 0; i < 10; ++i) est.record_arrival(i * 10.0);  // window 0
  est.record_arrival(150.0);                                  // window 1
  EXPECT_DOUBLE_EQ(est.lambda(50.0), 0.1);
  EXPECT_DOUBLE_EQ(est.lambda(150.0), 0.01);
  EXPECT_DOUBLE_EQ(est.lambda(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(est.lambda_max(), 0.1);
}

TEST(RateEstimator, NuFromDeparturesAndPopulation) {
  trace::RateEstimator est(100.0);
  // 5 departures in window 0, each seen with population 100:
  // nu = 5 / (100 s * 100 VMs) = 5e-4.
  for (int i = 0; i < 5; ++i) est.record_departure(i * 20.0, 100);
  EXPECT_NEAR(est.nu(50.0), 5e-4, 1e-12);
  EXPECT_DOUBLE_EQ(est.nu(500.0), 0.0);
}

TEST(RateEstimator, FunctionsAreSelfContainedCopies) {
  trace::RateEstimator est(100.0);
  est.record_arrival(10.0);
  const auto fn = est.lambda_fn();
  est.record_arrival(20.0);  // not visible to the captured copy
  EXPECT_DOUBLE_EQ(fn(50.0), 0.01);
  EXPECT_DOUBLE_EQ(est.lambda(50.0), 0.02);
}

TEST(RateEstimator, Validation) {
  EXPECT_THROW(trace::RateEstimator(0.0), std::invalid_argument);
  trace::RateEstimator est(10.0);
  EXPECT_THROW(est.record_arrival(-1.0), std::invalid_argument);
  EXPECT_THROW(est.record_departure(0.0, 0), std::invalid_argument);
}

// -------------------------------------------------------- streaming traces

TEST(StreamingTraces, BitIdenticalToMaterializedGeneration) {
  trace::WorkloadConfig config;
  trace::WorkloadModel model(config);
  constexpr std::size_t kVms = 40;
  constexpr std::size_t kSteps = 120;

  Rng rng_a(12345);
  Rng rng_b(12345);
  const trace::TraceSet set = trace::TraceSet::generate(model, kVms, kSteps, rng_a);
  trace::StreamingTraces bank =
      trace::StreamingTraces::generate(model, kVms, kSteps, rng_b);

  ASSERT_EQ(bank.num_vms(), set.num_vms());
  ASSERT_EQ(bank.num_steps(), set.num_steps());
  EXPECT_DOUBLE_EQ(bank.sample_period_s(), set.sample_period_s());
  EXPECT_DOUBLE_EQ(bank.reference_mhz(), set.reference_mhz());
  for (std::size_t v = 0; v < kVms; ++v) {
    // Exact equality, not NEAR: the draws and arithmetic must be identical.
    ASSERT_EQ(bank.average_percent(v), set.average_percent(v)) << "vm " << v;
    ASSERT_EQ(bank.ram_mb(v), set.ram_mb(v)) << "vm " << v;
  }
  for (std::size_t k = 0; k < kSteps; ++k) {
    bank.advance_to(k);
    ASSERT_EQ(bank.current_step(), k);
    for (std::size_t v = 0; v < kVms; ++v) {
      ASSERT_EQ(bank.percent_current(v), set.percent_at(v, k))
          << "vm " << v << " step " << k;
      ASSERT_EQ(bank.demand_mhz_current(v), set.demand_mhz_at(v, k))
          << "vm " << v << " step " << k;
    }
  }
  // Both generators must consume the shared stream identically, or the
  // controller/fault draws downstream of trace generation would diverge.
  EXPECT_EQ(rng_a(), rng_b());
}

TEST(StreamingTraces, AdvancePastGapMatchesMaterialized) {
  trace::WorkloadConfig config;
  trace::WorkloadModel model(config);
  Rng rng_a(777);
  Rng rng_b(777);
  const trace::TraceSet set = trace::TraceSet::generate(model, 5, 50, rng_a);
  trace::StreamingTraces bank = trace::StreamingTraces::generate(model, 5, 50, rng_b);
  // Jump straight to a far step: the lazy replay must land on the same
  // values as stepping one at a time (checkpoint fast-forward path).
  bank.advance_to(37);
  for (std::size_t v = 0; v < 5; ++v) {
    ASSERT_EQ(bank.percent_current(v), set.percent_at(v, 37)) << "vm " << v;
  }
}

TEST(StreamingTraces, RejectsRewindAndOverrun) {
  trace::WorkloadConfig config;
  trace::WorkloadModel model(config);
  Rng rng(1);
  trace::StreamingTraces bank = trace::StreamingTraces::generate(model, 3, 10, rng);
  bank.advance_to(4);
  EXPECT_THROW(bank.advance_to(3), std::invalid_argument);
  EXPECT_THROW(bank.advance_to(10), std::invalid_argument);
  EXPECT_NO_THROW(bank.advance_to(4));  // idempotent at the current step
  EXPECT_THROW((void)bank.step_at(-1.0), std::invalid_argument);
}

TEST(StreamingTraces, GenerateValidation) {
  trace::WorkloadConfig config;
  trace::WorkloadModel model(config);
  Rng rng(1);
  EXPECT_THROW(trace::StreamingTraces::generate(model, 0, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(trace::StreamingTraces::generate(model, 3, 0, rng),
               std::invalid_argument);
}

TEST(StreamingTraces, PartitionedBanksMatchMonolithicGeneration) {
  trace::WorkloadConfig config;
  trace::WorkloadModel model(config);
  constexpr std::size_t kVms = 41;  // not divisible by K: uneven banks
  constexpr std::size_t kSteps = 60;
  constexpr std::size_t kBanks = 4;

  Rng rng_a(4242);
  Rng rng_b(4242);
  trace::StreamingTraces whole =
      trace::StreamingTraces::generate(model, kVms, kSteps, rng_a);
  std::vector<trace::StreamingTraces> banks =
      trace::StreamingTraces::generate_partitioned(model, kVms, kSteps, rng_b,
                                                   kBanks);
  ASSERT_EQ(banks.size(), kBanks);
  // Both generators must consume the shared stream identically, or the
  // controller/fault draws downstream of trace generation would diverge
  // between a sharded streaming run and every other mode.
  EXPECT_EQ(rng_a(), rng_b());

  for (std::size_t v = 0; v < kVms; ++v) {
    trace::StreamingTraces& bank = banks[v % kBanks];
    // num_vms() stays GLOBAL (the TraceDriver validates global indices);
    // residency is per bank, following ShardPlan::shard_of_trace's rule.
    ASSERT_EQ(bank.num_vms(), kVms);
    ASSERT_TRUE(bank.has_row(v));
    EXPECT_FALSE(banks[(v + 1) % kBanks].has_row(v));
    ASSERT_EQ(bank.average_percent(v), whole.average_percent(v)) << "vm " << v;
    ASSERT_EQ(bank.ram_mb(v), whole.ram_mb(v)) << "vm " << v;
  }
  for (const std::size_t step : {std::size_t{1}, std::size_t{17}, kSteps - 1}) {
    whole.advance_to(step);
    for (auto& bank : banks) bank.advance_to(step);
    for (std::size_t v = 0; v < kVms; ++v) {
      ASSERT_EQ(banks[v % kBanks].percent_current(v), whole.percent_current(v))
          << "vm " << v << " step " << step;
    }
  }
}

TEST(StreamingTraces, AdoptedRowTracksItsHomeBankExactly) {
  trace::WorkloadConfig config;
  trace::WorkloadModel model(config);
  Rng rng_a(99);
  Rng rng_b(99);
  trace::StreamingTraces whole =
      trace::StreamingTraces::generate(model, 10, 40, rng_a);
  std::vector<trace::StreamingTraces> banks =
      trace::StreamingTraces::generate_partitioned(model, 10, 40, rng_b, 2);

  // Row 3 lives in bank 1; bank 0 cannot drive it before adoption.
  EXPECT_THROW((void)banks[0].percent_current(3), std::invalid_argument);
  EXPECT_THROW(banks[0].adopt_row(99, banks[1]), std::invalid_argument);

  // Adoption is only exact when both banks sit at the same step.
  banks[1].advance_to(5);
  EXPECT_THROW(banks[0].adopt_row(3, banks[1]), std::invalid_argument);
  banks[0].advance_to(5);
  banks[0].adopt_row(3, banks[1]);
  ASSERT_TRUE(banks[0].has_row(3));
  banks[0].adopt_row(3, banks[1]);  // idempotent no-op

  whole.advance_to(5);
  ASSERT_EQ(banks[0].percent_current(3), whole.percent_current(3));
  // The copy advances independently of its home bank yet reproduces the
  // row bit for bit at every later step — the property the cross-shard
  // hand-off relies on.
  for (std::size_t step = 6; step < 40; ++step) {
    whole.advance_to(step);
    banks[0].advance_to(step);
    banks[1].advance_to(step);
    ASSERT_EQ(banks[0].percent_current(3), whole.percent_current(3)) << step;
    ASSERT_EQ(banks[1].percent_current(3), whole.percent_current(3)) << step;
  }
}
