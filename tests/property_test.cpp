// Property-based tests: system invariants checked under randomized
// workloads and schedules, parameterized over seeds.

#include <gtest/gtest.h>

#include <numeric>

#include "ecocloud/core/controller.hpp"
#include "ecocloud/core/trace_driver.hpp"
#include "ecocloud/ode/fluid_model.hpp"
#include "ecocloud/ode/poisson_binomial.hpp"
#include "ecocloud/scenario/scenario.hpp"
#include "ecocloud/util/rng.hpp"

using namespace ecocloud;

namespace {

/// Recompute every DataCenter aggregate from scratch and compare with the
/// incrementally maintained values.
void check_datacenter_invariants(const dc::DataCenter& d) {
  double total_demand = 0.0;
  double total_power = 0.0;
  std::size_t placed = 0;
  std::size_t active = 0;

  std::vector<double> per_server_demand(d.num_servers(), 0.0);
  std::vector<double> per_server_ram(d.num_servers(), 0.0);
  std::vector<std::size_t> per_server_count(d.num_servers(), 0);

  for (std::size_t i = 0; i < d.num_vms(); ++i) {
    const dc::Vm& vm = d.vm(static_cast<dc::VmId>(i));
    if (vm.placed()) {
      ++placed;
      total_demand += vm.demand_mhz;
      per_server_demand[vm.host] += vm.demand_mhz;
      per_server_ram[vm.host] += vm.ram_mb;
      ++per_server_count[vm.host];
    }
  }

  for (const dc::Server& server : d.servers()) {
    if (server.active()) ++active;
    // Hibernated servers host nothing.
    if (server.hibernated()) {
      EXPECT_TRUE(server.empty()) << "hibernated server " << server.id()
                                  << " hosts VMs";
      EXPECT_DOUBLE_EQ(server.reserved_mhz(), 0.0);
    }
    // Cached per-server demand equals the recomputed sum.
    EXPECT_NEAR(server.demand_mhz(), per_server_demand[server.id()], 1e-6);
    EXPECT_NEAR(server.ram_used_mb(), per_server_ram[server.id()], 1e-6);
    EXPECT_EQ(server.vm_count(), per_server_count[server.id()]);
    EXPECT_GE(server.reserved_mhz(), 0.0);
    total_power += d.power_model().power_w(server);
  }

  EXPECT_EQ(d.placed_vm_count(), placed);
  EXPECT_EQ(d.active_server_count(), active);
  EXPECT_NEAR(d.total_demand_mhz(), total_demand, 1e-5);
  EXPECT_NEAR(d.total_power_w(), total_power, 1e-6);

  // Power bounded by fleet physics.
  double peak_total = 0.0;
  for (const dc::Server& server : d.servers()) {
    peak_total += d.power_model().peak_w(server.num_cores());
  }
  EXPECT_GE(d.total_power_w(), 0.0);
  EXPECT_LE(d.total_power_w(), peak_total + 1e-6);

  // Per-state index sets match a brute-force scan exactly, ascending by id
  // (the sorted order is what pins RNG draw sequences to pre-index runs).
  for (const dc::ServerState state :
       {dc::ServerState::kHibernated, dc::ServerState::kBooting,
        dc::ServerState::kActive, dc::ServerState::kFailed}) {
    std::vector<dc::ServerId> expected;
    for (const dc::Server& server : d.servers()) {
      if (server.state() == state) expected.push_back(server.id());
    }
    EXPECT_EQ(d.servers_with(state), expected)
        << "index mismatch for state " << dc::to_string(state);
  }

  // Cached outbound-migration counts match a scan of each server's VMs.
  for (const dc::Server& server : d.servers()) {
    std::size_t migrating_out = 0;
    for (dc::VmId v : server.vms()) {
      if (d.vm(v).migrating()) ++migrating_out;
    }
    EXPECT_EQ(server.migrating_out_count(), migrating_out)
        << "server " << server.id();
  }
}

}  // namespace

// ------------------------------------------- randomized end-to-end invariants

class DailyInvariantProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DailyInvariantProperty, HoldAtRandomInstantsThroughoutTheRun) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 40;
  config.num_vms = 500;
  config.horizon_s = 8.0 * sim::kHour;
  config.seed = GetParam();
  scenario::DailyScenario daily(config);

  // Check invariants at staggered times while the simulation runs.
  int checks = 0;
  for (double h = 0.5; h < 8.0; h += 0.7) {
    daily.simulator().schedule_at(h * sim::kHour, [&] {
      check_datacenter_invariants(daily.datacenter());
      ++checks;
    });
  }
  daily.run();
  EXPECT_GE(checks, 10);
  check_datacenter_invariants(daily.datacenter());

  // VM conservation: every VM is placed exactly once, on its recorded host.
  for (std::size_t i = 0; i < daily.datacenter().num_vms(); ++i) {
    const auto& vm = daily.datacenter().vm(static_cast<dc::VmId>(i));
    ASSERT_TRUE(vm.placed());
    const auto& host_vms = daily.datacenter().server(vm.host).vms();
    EXPECT_NE(std::find(host_vms.begin(), host_vms.end(), vm.id), host_vms.end());
  }

  // Accounting totals are consistent with time.
  const auto& d = daily.datacenter();
  EXPECT_NEAR(d.vm_seconds(),
              500.0 * 8.0 * sim::kHour, 500.0 * 8.0 * sim::kHour * 0.05);
  EXPECT_LE(d.overload_vm_seconds(), d.vm_seconds());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DailyInvariantProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

class ConsolidationInvariantProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsolidationInvariantProperty, OpenSystemConservesVms) {
  scenario::ConsolidationConfig config;
  config.num_servers = 20;
  config.initial_vms = 250;
  config.horizon_s = 5.0 * sim::kHour;
  config.seed = GetParam();
  scenario::ConsolidationScenario cons(config);

  for (double h = 0.5; h < 5.0; h += 0.9) {
    cons.simulator().schedule_at(h * sim::kHour, [&] {
      check_datacenter_invariants(cons.datacenter());
    });
  }
  cons.run();
  check_datacenter_invariants(cons.datacenter());

  // Population bookkeeping: placed + queued-on-boot == driver population.
  // (Queued VMs are rare at the end of a run; allow placed <= population.)
  EXPECT_LE(cons.datacenter().placed_vm_count(), cons.open_system().population() + 5);
  EXPECT_EQ(cons.open_system().total_arrivals() + config.initial_vms -
                cons.open_system().total_departures() -
                cons.open_system().total_rejections(),
            cons.open_system().population());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsolidationInvariantProperty,
                         ::testing::Values(11u, 12u, 13u));

// -------------------------------------------------- probabilistic properties

class PoissonBinomialProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PoissonBinomialProperty, PmfMatchesDeconvolutionRoundTrip) {
  util::Rng rng(GetParam());
  std::vector<double> probs;
  const std::size_t n = 5 + rng.index(40);
  for (std::size_t i = 0; i < n; ++i) probs.push_back(rng.uniform());
  const auto full = ecocloud::ode::poisson_binomial_pmf(probs);

  // Sum and mean match closed forms.
  double total = 0.0, mean = 0.0, expected_mean = 0.0;
  for (std::size_t k = 0; k < full.size(); ++k) {
    total += full[k];
    mean += static_cast<double>(k) * full[k];
  }
  for (double p : probs) expected_mean += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(mean, expected_mean, 1e-7);

  // Removing then re-adding a random factor returns the original pmf.
  const double f = probs[rng.index(probs.size())];
  const auto without = ecocloud::ode::remove_factor(full, f);
  std::vector<double> back(without.size() + 1, 0.0);
  for (std::size_t k = 0; k < back.size(); ++k) {
    const double lower = k > 0 ? without[k - 1] : 0.0;
    const double same = k < without.size() ? without[k] : 0.0;
    back[k] = same * (1.0 - f) + lower * f;
  }
  for (std::size_t k = 0; k < full.size(); ++k) {
    EXPECT_NEAR(back[k], full[k], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoissonBinomialProperty,
                         ::testing::Range<std::uint64_t>(100u, 112u));

class FluidSharesProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidSharesProperty, ExactSharesAreAProbabilityDistribution) {
  util::Rng rng(GetParam());
  const std::size_t n = 3 + rng.index(30);
  ecocloud::ode::FluidModelConfig config;
  config.num_servers = n;
  config.lambda = [](double) { return 1.0; };
  config.nu = [](double) { return 1.0; };
  config.vm_share.assign(n, 0.01);
  config.exact = true;
  ecocloud::ode::FluidModel model(config);

  std::vector<double> u(n);
  for (auto& x : u) x = rng.uniform();
  const auto shares = model.assignment_shares(u);

  double total = 0.0;
  bool anyone_accepts = false;
  ecocloud::core::AssignmentFunction fa(config.ta, config.p);
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_GE(shares[s], -1e-12);
    total += shares[s];
    if (fa(u[s]) > 0.0) anyone_accepts = true;
  }
  if (anyone_accepts) {
    EXPECT_NEAR(total, 1.0, 1e-6);
  } else {
    EXPECT_NEAR(total, 0.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidSharesProperty,
                         ::testing::Range<std::uint64_t>(200u, 215u));

// ------------------------------------------------------------- churn stress

class ChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnProperty, RandomDeployDepartChurnKeepsInvariants) {
  // Hammer the controller with randomized deploy/depart interleavings —
  // including departures of queued and mid-migration VMs — and verify the
  // DataCenter aggregates stay exact throughout.
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  for (int i = 0; i < 12; ++i) datacenter.add_server(6, 2000.0);
  core::EcoCloudParams params;
  params.monitor_period_s = 5.0;
  params.migration_cooldown_s = 20.0;
  core::EcoCloudController controller(simulator, datacenter, params,
                                      util::Rng(GetParam()));
  controller.start();

  util::Rng rng(GetParam() ^ 0xABCDEFULL);
  std::vector<dc::VmId> live;

  // One churn operation every ~20 s for 4 simulated hours.
  simulator.schedule_periodic(20.0, [&] {
    const double coin = rng.uniform();
    if (coin < 0.55 || live.empty()) {
      const dc::VmId vm = datacenter.create_vm(rng.uniform(100.0, 2500.0));
      if (controller.deploy_vm(vm)) live.push_back(vm);
    } else {
      const std::size_t pick = rng.index(live.size());
      controller.depart_vm(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    // Demand churn on a random live VM (trace-update analogue).
    if (!live.empty()) {
      datacenter.set_vm_demand(simulator.now(), live[rng.index(live.size())],
                               rng.uniform(50.0, 3000.0));
    }
  });

  int checks = 0;
  simulator.schedule_periodic(600.0, [&] {
    check_datacenter_invariants(datacenter);
    ++checks;
  });

  simulator.run_until(4.0 * sim::kHour);
  datacenter.advance_to(simulator.now());
  check_datacenter_invariants(datacenter);
  EXPECT_GE(checks, 20);

  // Every live VM is placed or queued; departed VMs hold no resources.
  std::size_t placed = 0;
  for (dc::VmId vm : live) {
    if (datacenter.vm(vm).placed()) ++placed;
  }
  EXPECT_LE(datacenter.placed_vm_count(), live.size());
  EXPECT_GE(placed + 5, datacenter.placed_vm_count());  // few boot-queued
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnProperty,
                         ::testing::Values(21u, 22u, 23u, 24u));

// ------------------------------------------- per-VM SLA attribution identity

TEST(PerVmSlaProperty, SumOfPerVmEqualsGlobalOverloadSeconds) {
  // Over a full stochastic run with migrations, the per-VM attributions
  // must sum exactly to the globally integrated overload VM-seconds.
  scenario::DailyConfig config;
  config.fleet.num_servers = 40;
  config.num_vms = 600;
  config.horizon_s = 8.0 * sim::kHour;
  config.seed = 31;
  scenario::DailyScenario daily(config);
  daily.run();
  const auto& d = daily.datacenter();
  double per_vm_total = 0.0;
  for (std::size_t v = 0; v < d.num_vms(); ++v) {
    const double s =
        d.vm_overload_seconds(static_cast<dc::VmId>(v), config.horizon_s);
    EXPECT_GE(s, -1e-9);
    per_vm_total += s;
  }
  EXPECT_NEAR(per_vm_total, d.overload_vm_seconds(),
              1e-6 * std::max(1.0, d.overload_vm_seconds()));
}

// --------------------------------------------------- regression properties

TEST(RegressionProperty, NoGhostReservationsAfterLongRun) {
  // Regression for the reservation leak: after hours of migrations with
  // demands changing mid-flight, the total reserved capacity must equal
  // exactly the sum of in-flight VMs' recorded reservations.
  scenario::DailyConfig config;
  config.fleet.num_servers = 50;
  config.num_vms = 750;
  config.horizon_s = 10.0 * sim::kHour;
  config.seed = 77;
  scenario::DailyScenario daily(config);
  daily.run();
  const auto& d = daily.datacenter();
  double recorded = 0.0;
  std::size_t inflight = 0;
  for (std::size_t v = 0; v < d.num_vms(); ++v) {
    const auto& vm = d.vm(static_cast<dc::VmId>(v));
    if (vm.migrating()) {
      recorded += vm.reserved_at_dest_mhz;
      ++inflight;
    }
  }
  double reserved = 0.0;
  for (const auto& server : d.servers()) reserved += server.reserved_mhz();
  EXPECT_NEAR(reserved, recorded, 1e-6);
  EXPECT_EQ(d.inflight_migrations(), inflight);
}

TEST(RegressionProperty, NoZombieEmptyActiveServers) {
  // Regression for the dropped hibernation check: at the end of a long
  // descent, no server may sit active-and-empty beyond the hibernate delay
  // plus grace unless an inbound migration holds a reservation.
  scenario::DailyConfig config;
  config.fleet.num_servers = 50;
  config.num_vms = 750;
  config.horizon_s = 16.0 * sim::kHour;  // ends in the overnight descent
  config.seed = 78;
  scenario::DailyScenario daily(config);

  // Track when each server last became empty.
  std::vector<double> empty_since(50, -1.0);
  daily.simulator().schedule_periodic(60.0, [&] {
    const double now = daily.simulator().now();
    for (const auto& server : daily.datacenter().servers()) {
      if (server.active() && server.empty() && server.reserved_mhz() == 0.0) {
        if (empty_since[server.id()] < 0.0) empty_since[server.id()] = now;
        const double idle_for = now - empty_since[server.id()];
        const double allowance = daily.config().params.hibernate_delay_s +
                                 daily.config().params.grace_period_s + 600.0;
        EXPECT_LT(idle_for, allowance)
            << "server " << server.id() << " stuck active-empty";
      } else {
        empty_since[server.id()] = -1.0;
      }
    }
  });
  daily.run();
}

TEST(RegressionProperty, CollectorWindowsNeverNegative) {
  // Regression for the warm-up rebase: every reported window must carry
  // non-negative energy and overload, whatever the warm-up length.
  for (double warmup_h : {0.0, 1.0, 3.0}) {
    scenario::DailyConfig config;
    config.fleet.num_servers = 30;
    config.num_vms = 400;
    config.warmup_s = warmup_h * sim::kHour;
    config.horizon_s = (warmup_h + 3.0) * sim::kHour;
    scenario::DailyScenario daily(config);
    daily.run();
    for (const auto& sample : daily.collector().samples()) {
      EXPECT_GE(sample.window_energy_j, 0.0) << "warmup_h=" << warmup_h;
      EXPECT_GE(sample.overload_percent, 0.0) << "warmup_h=" << warmup_h;
    }
  }
}

// --- Per-state index maintenance under adversarial transition sequences ----

/// Drive the DataCenter through a long randomized walk over every state
/// transition and migration path, re-validating the incremental per-state
/// indices (and all other aggregates) against brute-force scans after each
/// step. This is the direct test for the indexed-set machinery: any missed
/// move_server_index call or ordering bug shows up as an index/scan diff.
class StateIndexWalkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StateIndexWalkProperty, IndicesMatchBruteForceScanAfterEveryTransition) {
  util::Rng rng(GetParam());
  dc::DataCenter d;
  constexpr std::size_t kServers = 12;
  constexpr std::size_t kVms = 30;
  for (std::size_t s = 0; s < kServers; ++s) d.add_server(2, 2000.0, 8192.0);
  for (std::size_t v = 0; v < kVms; ++v) {
    d.create_vm(rng.uniform(100.0, 1500.0), 256.0);
  }
  check_datacenter_invariants(d);

  const auto pick = [&rng](const std::vector<dc::ServerId>& ids) {
    return ids[rng.index(ids.size())];
  };
  const auto hosts_migrating_vm = [&d](const dc::Server& srv) {
    for (dc::VmId v : srv.vms()) {
      if (d.vm(v).migrating()) return true;
    }
    return false;
  };

  sim::SimTime t = 0.0;
  for (int step = 0; step < 600; ++step) {
    t += rng.uniform(0.0, 30.0);
    switch (rng.index(10)) {
      case 0: {  // Hibernated -> Booting.
        const std::vector<dc::ServerId> ids =
            d.servers_with(dc::ServerState::kHibernated);
        if (!ids.empty()) d.start_booting(t, pick(ids));
        break;
      }
      case 1: {  // Booting -> Active.
        const std::vector<dc::ServerId> ids =
            d.servers_with(dc::ServerState::kBooting);
        if (!ids.empty()) d.finish_booting(t, pick(ids));
        break;
      }
      case 2: {  // Active -> Hibernated (empty, unreserved servers only).
        std::vector<dc::ServerId> ids;
        for (dc::ServerId s : d.servers_with(dc::ServerState::kActive)) {
          const dc::Server& srv = d.server(s);
          if (srv.empty() && srv.reserved_mhz() == 0.0) ids.push_back(s);
        }
        if (!ids.empty()) d.hibernate(t, pick(ids));
        break;
      }
      case 3: {  // Crash a server not entangled in any migration.
        std::vector<dc::ServerId> ids;
        for (const dc::Server& srv : d.servers()) {
          if (!srv.failed() && srv.reservation_count() == 0 &&
              !hosts_migrating_vm(srv)) {
            ids.push_back(srv.id());
          }
        }
        if (!ids.empty()) d.fail_server(t, pick(ids));
        break;
      }
      case 4: {  // Failed -> Hibernated.
        const std::vector<dc::ServerId> ids =
            d.servers_with(dc::ServerState::kFailed);
        if (!ids.empty()) d.repair_server(t, pick(ids));
        break;
      }
      case 5: {  // Place an idle VM on a random active server.
        std::vector<dc::VmId> idle;
        for (std::size_t v = 0; v < d.num_vms(); ++v) {
          if (!d.vm(static_cast<dc::VmId>(v)).placed()) {
            idle.push_back(static_cast<dc::VmId>(v));
          }
        }
        const std::vector<dc::ServerId>& active =
            d.servers_with(dc::ServerState::kActive);
        if (!idle.empty() && !active.empty()) {
          d.place_vm(t, idle[rng.index(idle.size())], pick(active));
        }
        break;
      }
      case 6: {  // Remove a placed, non-migrating VM.
        std::vector<dc::VmId> placed;
        for (std::size_t v = 0; v < d.num_vms(); ++v) {
          const dc::Vm& vm = d.vm(static_cast<dc::VmId>(v));
          if (vm.placed() && !vm.migrating()) {
            placed.push_back(static_cast<dc::VmId>(v));
          }
        }
        if (!placed.empty()) d.unplace_vm(t, placed[rng.index(placed.size())]);
        break;
      }
      case 7: {  // Start a migration to another active server.
        std::vector<dc::VmId> movable;
        for (std::size_t v = 0; v < d.num_vms(); ++v) {
          const dc::Vm& vm = d.vm(static_cast<dc::VmId>(v));
          if (vm.placed() && !vm.migrating()) {
            movable.push_back(static_cast<dc::VmId>(v));
          }
        }
        if (movable.empty()) break;
        const dc::VmId v = movable[rng.index(movable.size())];
        std::vector<dc::ServerId> dests;
        for (dc::ServerId s : d.servers_with(dc::ServerState::kActive)) {
          if (s != d.vm(v).host) dests.push_back(s);
        }
        if (!dests.empty()) d.begin_migration(t, v, pick(dests));
        break;
      }
      case 8: {  // Land an in-flight migration.
        std::vector<dc::VmId> inflight;
        for (std::size_t v = 0; v < d.num_vms(); ++v) {
          if (d.vm(static_cast<dc::VmId>(v)).migrating()) {
            inflight.push_back(static_cast<dc::VmId>(v));
          }
        }
        if (!inflight.empty()) {
          d.complete_migration(t, inflight[rng.index(inflight.size())]);
        }
        break;
      }
      case 9: {  // Abort an in-flight migration.
        std::vector<dc::VmId> inflight;
        for (std::size_t v = 0; v < d.num_vms(); ++v) {
          if (d.vm(static_cast<dc::VmId>(v)).migrating()) {
            inflight.push_back(static_cast<dc::VmId>(v));
          }
        }
        if (!inflight.empty()) {
          d.cancel_migration(t, inflight[rng.index(inflight.size())]);
        }
        break;
      }
    }
    check_datacenter_invariants(d);
    if (::testing::Test::HasFailure()) {
      FAIL() << "invariant broken at walk step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateIndexWalkProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));
