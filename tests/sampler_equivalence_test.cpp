// Validation of the fast O(k) sampler (params.fast_sampler) against the
// compatibility sampler it replaces at planet scale.
//
// The two modes draw the shared RNG stream differently, so their runs are
// *different by construction*; what must hold is that the fast sampler
// implements the same randomized algorithm: uniform invitation groups that
// never contact the excluded server, and end-to-end runs whose aggregate
// physics (energy, active servers, migration activity) match the compat
// sampler within sampling noise. DESIGN.md §14 documents the contract.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "ecocloud/core/assignment.hpp"
#include "ecocloud/metrics/collector.hpp"
#include "ecocloud/scenario/scenario.hpp"

namespace core = ecocloud::core;
namespace dc = ecocloud::dc;
namespace scenario = ecocloud::scenario;
namespace sim = ecocloud::sim;
using ecocloud::util::Rng;

namespace {

struct Fixture {
  dc::DataCenter datacenter;
  core::EcoCloudParams params;
  Rng rng{20130520};

  /// Active server at the utilization where f_a peaks (f_a = 1), so every
  /// contacted server volunteers and the invitation group is observable
  /// through the volunteer count and the winner.
  dc::ServerId add_argmax_server(const core::AssignmentFunction& fa) {
    const auto s = datacenter.add_server(6, 2000.0);
    datacenter.start_booting(0.0, s);
    datacenter.finish_booting(0.0, s);
    const auto v =
        datacenter.create_vm(fa.argmax() * datacenter.server(s).capacity_mhz());
    datacenter.place_vm(0.0, v, s);
    return s;
  }
};

/// Relative gap |a - b| / max(|a|, |b|).
double rel_gap(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale == 0.0 ? 0.0 : std::abs(a - b) / scale;
}

struct RunStats {
  double energy_kwh = 0.0;
  double mean_active = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t wake_ups = 0;
  std::uint64_t failures = 0;
};

RunStats run_daily(const scenario::DailyConfig& config) {
  scenario::DailyScenario daily(config);
  daily.run();
  RunStats stats;
  stats.energy_kwh = daily.collector().total_energy_kwh();
  const auto& samples = daily.collector().samples();
  for (const auto& sample : samples) {
    stats.mean_active += static_cast<double>(sample.active_servers);
  }
  if (!samples.empty()) stats.mean_active /= static_cast<double>(samples.size());
  stats.migrations =
      daily.ecocloud()->low_migrations() + daily.ecocloud()->high_migrations();
  stats.wake_ups = daily.ecocloud()->wake_ups();
  stats.failures = daily.ecocloud()->assignment_failures();
  return stats;
}

}  // namespace

// Group sampling: every round contacts exactly invite_group_size servers,
// all of them volunteer (f_a = 1 at argmax), the excluded server never
// wins, and over many rounds every eligible server wins — the uniformity
// and exclusion properties Floyd's subset sampling must provide.
TEST(FastSampler, GroupSamplingIsUniformAndHonorsExclusion) {
  Fixture f;
  f.params.fast_sampler = true;
  f.params.invite_group_size = 4;
  core::AssignmentProcedure proc(f.params, f.rng);

  constexpr std::size_t kServers = 12;
  std::vector<dc::ServerId> servers;
  for (std::size_t i = 0; i < kServers; ++i) {
    servers.push_back(f.add_argmax_server(proc.fa()));
  }
  const dc::ServerId excluded = servers.front();

  constexpr int kRounds = 600;
  std::vector<int> wins(kServers, 0);
  for (int round = 0; round < kRounds; ++round) {
    const auto result = proc.invite(f.datacenter, 0.0, 10.0, 0.0,
                                    /*ta_override=*/-1.0, excluded);
    ASSERT_EQ(result.contacted, 4u);
    ASSERT_EQ(result.volunteers, 4u);
    ASSERT_TRUE(result.server.has_value());
    ASSERT_NE(*result.server, excluded);
    ++wins[*result.server];
  }
  EXPECT_EQ(wins[excluded], 0);
  // Uniform over 11 eligible servers: expectation ~54.5 wins each. Require
  // a loose floor; the probability of any server falling under it is
  // negligible (normal tail beyond 5 sigma).
  for (std::size_t i = 1; i < kServers; ++i) {
    EXPECT_GE(wins[i], 20) << "server " << i << " undersampled";
  }
}

// Broadcast (group size 0) in fast mode contacts every active server except
// the excluded one — same coverage as the compat scan, just drawn from the
// dense membership set.
TEST(FastSampler, BroadcastContactsAllActiveMinusExclusion) {
  Fixture f;
  f.params.fast_sampler = true;
  core::AssignmentProcedure proc(f.params, f.rng);
  std::vector<dc::ServerId> servers;
  for (int i = 0; i < 7; ++i) servers.push_back(f.add_argmax_server(proc.fa()));

  const auto all = proc.invite(f.datacenter, 0.0, 10.0);
  EXPECT_EQ(all.contacted, 7u);
  const auto minus_one = proc.invite(f.datacenter, 0.0, 10.0, 0.0,
                                     /*ta_override=*/-1.0, servers[3]);
  EXPECT_EQ(minus_one.contacted, 6u);
  ASSERT_TRUE(minus_one.server.has_value());
  EXPECT_NE(*minus_one.server, servers[3]);
}

// When the eligible set is not larger than the group, fast mode degrades to
// a broadcast instead of sampling (nothing to thin).
TEST(FastSampler, SmallEligibleSetFallsBackToBroadcast) {
  Fixture f;
  f.params.fast_sampler = true;
  f.params.invite_group_size = 8;
  core::AssignmentProcedure proc(f.params, f.rng);
  std::vector<dc::ServerId> servers;
  for (int i = 0; i < 4; ++i) servers.push_back(f.add_argmax_server(proc.fa()));

  const auto result = proc.invite(f.datacenter, 0.0, 10.0, 0.0,
                                  /*ta_override=*/-1.0, servers[0]);
  EXPECT_EQ(result.contacted, 3u);
}

// End-to-end distributional equivalence on the paper-scale scenario: the
// fast sampler must reproduce the compat sampler's aggregate physics within
// sampling noise, both for broadcast invitations and for group-limited ones.
// Tolerances are deliberately loose — the two modes are independent samples
// of the same stochastic process, not the same run.
TEST(FastSampler, DailyScenarioAggregatesMatchCompatSampler) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 200;
  config.num_vms = 3000;
  config.horizon_s = 24.0 * sim::kHour;
  config.warmup_s = 6.0 * sim::kHour;

  for (const std::size_t group : {std::size_t{0}, std::size_t{20}}) {
    SCOPED_TRACE("invite_group_size = " + std::to_string(group));
    config.params.invite_group_size = group;

    config.params.fast_sampler = false;
    const RunStats compat = run_daily(config);
    config.params.fast_sampler = true;
    const RunStats fast = run_daily(config);

    EXPECT_LT(rel_gap(fast.energy_kwh, compat.energy_kwh), 0.05)
        << "fast " << fast.energy_kwh << " vs compat " << compat.energy_kwh;
    EXPECT_LT(rel_gap(fast.mean_active, compat.mean_active), 0.05)
        << "fast " << fast.mean_active << " vs compat " << compat.mean_active;
    EXPECT_LT(rel_gap(static_cast<double>(fast.migrations),
                      static_cast<double>(compat.migrations)),
              0.35)
        << "fast " << fast.migrations << " vs compat " << compat.migrations;
    // Saturation behavior must agree: neither mode should report deploy
    // failures the other does not (the scenario is sized to never fail).
    EXPECT_EQ(fast.failures, compat.failures);
    EXPECT_EQ(fast.failures, 0u);
  }
}
