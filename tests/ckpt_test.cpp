// Tests for the checkpoint/restore subsystem: the snapshot container's
// rejection of corrupted/foreign files, bit-identical resume of both
// scenarios (event log bytes, metric samples and every accumulated
// aggregate), the consistency rules that refuse to resume into different
// wiring, and the runtime invariant auditor + watchdog.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ecocloud/ckpt/auditor.hpp"
#include "ecocloud/ckpt/checkpoint.hpp"
#include "ecocloud/ckpt/snapshot_io.hpp"
#include "ecocloud/ckpt/watchdog.hpp"
#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/scenario/scenario.hpp"
#include "ecocloud/util/rng.hpp"
#include "ecocloud/util/snapshot.hpp"

using namespace ecocloud;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ckpt_test_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- Snapshot container ------------------------------------------------------

ckpt::Snapshot sample_snapshot() {
  ckpt::Snapshot snapshot;
  snapshot.add("alpha", std::string("hello\0world", 11));
  snapshot.add("beta", "");
  std::string blob(4096, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>(i * 31 + 7);
  }
  snapshot.add("gamma", blob);
  return snapshot;
}

TEST(SnapshotIo, RoundTripPreservesSections) {
  const std::string path = temp_path("roundtrip.ckpt");
  const ckpt::Snapshot written = sample_snapshot();
  ckpt::write_snapshot_file(written, path);

  const ckpt::Snapshot read = ckpt::read_snapshot_file(path);
  ASSERT_EQ(read.sections.size(), written.sections.size());
  for (std::size_t i = 0; i < written.sections.size(); ++i) {
    EXPECT_EQ(read.sections[i].name, written.sections[i].name);
    EXPECT_EQ(read.sections[i].payload, written.sections[i].payload);
  }
  std::remove(path.c_str());
}

TEST(SnapshotIo, AtomicWriteLeavesNoTemporary) {
  const std::string path = temp_path("atomic.ckpt");
  ckpt::write_snapshot_file(sample_snapshot(), path);
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(SnapshotIo, DuplicateSectionNameRejected) {
  ckpt::Snapshot snapshot;
  snapshot.add("twice", "a");
  EXPECT_THROW(snapshot.add("twice", "b"), ckpt::SnapshotError);
}

TEST(SnapshotIo, MissingFileRejected) {
  EXPECT_THROW((void)ckpt::read_snapshot_file(temp_path("does_not_exist.ckpt")),
               ckpt::SnapshotError);
}

TEST(SnapshotIo, BadMagicRejected) {
  const std::string path = temp_path("magic.ckpt");
  ckpt::write_snapshot_file(sample_snapshot(), path);
  std::string bytes = read_file(path);
  bytes[0] = 'X';
  write_file(path, bytes);
  try {
    (void)ckpt::read_snapshot_file(path);
    FAIL() << "bad magic accepted";
  } catch (const ckpt::SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("bad magic"), std::string::npos)
        << error.what();
  }
  std::remove(path.c_str());
}

TEST(SnapshotIo, WrongFormatVersionRejected) {
  const std::string path = temp_path("version.ckpt");
  ckpt::write_snapshot_file(sample_snapshot(), path);
  std::string bytes = read_file(path);
  // Little-endian u32 version immediately after the 8-byte magic.
  bytes[sizeof(ckpt::kSnapshotMagic)] =
      static_cast<char>(ckpt::kFormatVersion + 1);
  write_file(path, bytes);
  try {
    (void)ckpt::read_snapshot_file(path);
    FAIL() << "wrong version accepted";
  } catch (const ckpt::SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("format version"), std::string::npos)
        << error.what();
  }
  std::remove(path.c_str());
}

TEST(SnapshotIo, FlippedPayloadBitFailsCrc) {
  const std::string path = temp_path("crc.ckpt");
  ckpt::write_snapshot_file(sample_snapshot(), path);
  std::string bytes = read_file(path);
  // The tail of the file is inside the last section's payload.
  bytes[bytes.size() - 10] ^= 0x20;
  write_file(path, bytes);
  try {
    (void)ckpt::read_snapshot_file(path);
    FAIL() << "corrupted payload accepted";
  } catch (const ckpt::SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("CRC32"), std::string::npos)
        << error.what();
  }
  std::remove(path.c_str());
}

TEST(SnapshotIo, TruncatedFileRejectedAtEveryLength) {
  const std::string path = temp_path("truncated.ckpt");
  ckpt::write_snapshot_file(sample_snapshot(), path);
  const std::string bytes = read_file(path);
  // Every proper prefix must be rejected cleanly (no UB, no acceptance):
  // cutting inside the header, a section name, a length field, or a payload.
  for (std::size_t keep : {std::size_t{0}, std::size_t{4}, std::size_t{9},
                           std::size_t{30}, bytes.size() / 2, bytes.size() - 1}) {
    ASSERT_LT(keep, bytes.size());
    write_file(path, bytes.substr(0, keep));
    EXPECT_THROW((void)ckpt::read_snapshot_file(path), ckpt::SnapshotError)
        << "prefix of " << keep << " bytes accepted";
  }
  std::remove(path.c_str());
}

TEST(SnapshotIo, TrailingGarbageRejected) {
  const std::string path = temp_path("trailing.ckpt");
  ckpt::write_snapshot_file(sample_snapshot(), path);
  write_file(path, read_file(path) + "extra");
  EXPECT_THROW((void)ckpt::read_snapshot_file(path), ckpt::SnapshotError);
  std::remove(path.c_str());
}

// --- unordered_map iteration-order restore -----------------------------------

// Bit-exact resume hinges on restoring hashtable iteration order, which
// save_unordered/load_unordered achieve (on libstdc++) by re-inserting in
// reverse saved order into a table with the saved bucket count. Property:
// arbitrary insert/erase histories round-trip to the same iteration order.
TEST(SnapshotUtil, UnorderedMapIterationOrderSurvivesRoundTrip) {
  util::Rng rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    std::unordered_map<std::uint64_t, double> original;
    const std::size_t inserts = 1 + rng.uniform_int(400);
    for (std::size_t i = 0; i < inserts; ++i) {
      original[rng.uniform_int(1000)] = rng.uniform();
      if (!original.empty() && rng.bernoulli(0.2)) {
        original.erase(original.begin());
      }
    }

    util::BinWriter w;
    util::save_unordered(w, original,
                         [](util::BinWriter& out, std::uint64_t key, double value) {
                           out.u64(key);
                           out.f64(value);
                         });
    std::unordered_map<std::uint64_t, double> restored;
    util::BinReader r(w.buffer());
    util::load_unordered(r, restored, [](util::BinReader& in) {
      const std::uint64_t key = in.u64();
      const double value = in.f64();
      return std::make_pair(key, value);
    });

    ASSERT_EQ(restored.size(), original.size());
    ASSERT_EQ(restored.bucket_count(), original.bucket_count());
    auto it = original.begin();
    auto jt = restored.begin();
    for (; it != original.end(); ++it, ++jt) {
      EXPECT_EQ(jt->first, it->first);
      EXPECT_EQ(jt->second, it->second);
    }
  }
}

// Matching immediately after restore is not enough: the restored table must
// also stay in lockstep with the original under further identical mutation,
// which requires the rehash policy (growth trajectory) to survive the round
// trip too. The critical case is a map snapshotted while still EMPTY —
// libstdc++'s never-used table sits in a single-bucket state that rehash()
// cannot recreate, and a restored 2-bucket table grows 2, 5, 11, ... while
// the original grows 13, 29, ..., diverging iteration order hours after
// resume (found by the crash-resume CI rehearsal; see load_unordered).
TEST(SnapshotUtil, RestoredMapStaysInLockstepUnderFurtherMutation) {
  util::Rng rng(8086);
  const auto save_item = [](util::BinWriter& out, std::uint64_t key,
                            double value) {
    out.u64(key);
    out.f64(value);
  };
  const auto load_item = [](util::BinReader& in) {
    const std::uint64_t key = in.u64();
    const double value = in.f64();
    return std::make_pair(key, value);
  };
  for (int trial = 0; trial < 20; ++trial) {
    std::unordered_map<std::uint64_t, double> original;
    // Trial 0 snapshots a virgin (never used) map; later trials snapshot
    // after a random history that may or may not leave it empty.
    const std::size_t inserts = trial == 0 ? 0 : rng.uniform_int(60);
    for (std::size_t i = 0; i < inserts; ++i) {
      original[rng.uniform_int(500)] = rng.uniform();
      if (!original.empty() && rng.bernoulli(0.4)) {
        original.erase(original.begin());
      }
    }

    util::BinWriter w;
    util::save_unordered(w, original, save_item);
    std::unordered_map<std::uint64_t, double> restored;
    util::BinReader r(w.buffer());
    util::load_unordered(r, restored, load_item);
    ASSERT_EQ(restored.bucket_count(), original.bucket_count());

    // Identical op sequence on both; structure must never diverge.
    for (int step = 0; step < 400; ++step) {
      const std::uint64_t key = rng.uniform_int(500);
      const double value = rng.uniform();
      original[key] = value;
      restored[key] = value;
      if (original.size() > 2 && rng.bernoulli(0.3)) {
        original.erase(original.begin());
        restored.erase(restored.begin());
      }
      ASSERT_EQ(restored.size(), original.size());
      ASSERT_EQ(restored.bucket_count(), original.bucket_count())
          << "trial " << trial << " step " << step;
      auto it = original.begin();
      auto jt = restored.begin();
      for (; it != original.end(); ++it, ++jt) {
        ASSERT_EQ(jt->first, it->first) << "trial " << trial << " step " << step;
      }
    }
  }
}

// --- Bit-identical resume: daily scenario ------------------------------------

namespace {

scenario::DailyConfig resume_daily_config() {
  scenario::DailyConfig config;
  config.fleet.num_servers = 48;
  config.num_vms = 600;
  config.horizon_s = 6.0 * sim::kHour;
  config.warmup_s = 1.0 * sim::kHour;
  config.seed = 7;
  // Exercise every fault code path so their RNG streams, redeploy queue
  // and in-flight repairs are part of what resume must reproduce.
  config.faults.server_mtbf_s = 4.0 * sim::kHour;
  config.faults.server_mttr_s = 600.0;
  config.faults.migration_abort_prob = 0.05;
  config.faults.boot_failure_prob = 0.10;
  config.faults.invitation_loss_prob = 0.02;
  config.faults.reply_loss_prob = 0.02;
  return config;
}

/// Everything a resumed run must reproduce bit for bit.
struct DailyResult {
  double energy_joules = 0.0;
  double vm_seconds = 0.0;
  double overload_vm_seconds = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t activations = 0;
  std::uint64_t hibernations = 0;
  std::uint64_t messages = 0;
  std::uint64_t executed_events = 0;
  std::string event_csv;
  std::vector<metrics::Sample> samples;
};

DailyResult daily_result(scenario::DailyScenario& daily,
                         const metrics::EventLog& log) {
  DailyResult result;
  const dc::DataCenter& d = daily.datacenter();
  result.energy_joules = d.energy_joules();
  result.vm_seconds = d.vm_seconds();
  result.overload_vm_seconds = d.overload_vm_seconds();
  result.migrations = d.total_migrations();
  result.activations = d.total_activations();
  result.hibernations = d.total_hibernations();
  result.messages = daily.ecocloud()->messages().total();
  result.executed_events = daily.simulator().executed_events();
  std::ostringstream csv;
  log.write_csv(csv);
  result.event_csv = csv.str();
  result.samples = daily.collector().samples();
  return result;
}

void expect_same(const DailyResult& resumed, const DailyResult& reference) {
  // Exact comparisons throughout: resume must be bit-identical, so even
  // doubles compare with ==.
  EXPECT_EQ(resumed.energy_joules, reference.energy_joules);
  EXPECT_EQ(resumed.vm_seconds, reference.vm_seconds);
  EXPECT_EQ(resumed.overload_vm_seconds, reference.overload_vm_seconds);
  EXPECT_EQ(resumed.migrations, reference.migrations);
  EXPECT_EQ(resumed.activations, reference.activations);
  EXPECT_EQ(resumed.hibernations, reference.hibernations);
  EXPECT_EQ(resumed.messages, reference.messages);
  EXPECT_EQ(resumed.executed_events, reference.executed_events);
  EXPECT_EQ(resumed.event_csv, reference.event_csv);
  ASSERT_EQ(resumed.samples.size(), reference.samples.size());
  for (std::size_t i = 0; i < reference.samples.size(); ++i) {
    EXPECT_EQ(resumed.samples[i].time, reference.samples[i].time);
    EXPECT_EQ(resumed.samples[i].active_servers, reference.samples[i].active_servers);
    EXPECT_EQ(resumed.samples[i].booting_servers,
              reference.samples[i].booting_servers);
    EXPECT_EQ(resumed.samples[i].overall_load, reference.samples[i].overall_load);
    EXPECT_EQ(resumed.samples[i].power_w, reference.samples[i].power_w);
    EXPECT_EQ(resumed.samples[i].overload_percent,
              reference.samples[i].overload_percent);
    EXPECT_EQ(resumed.samples[i].window_energy_j,
              reference.samples[i].window_energy_j);
  }
}

void register_event_log(ckpt::CheckpointManager& manager, metrics::EventLog& log) {
  manager.add_section(
      "event_log", [&log](util::BinWriter& w) { log.save_state(w); },
      [&log](util::BinReader& r) { log.load_state(r); });
}

/// Run the reference to completion with periodic checkpointing, keeping a
/// numbered copy of every snapshot along the way.
DailyResult run_daily_reference(const scenario::DailyConfig& config,
                                sim::SimTime period_s, const std::string& path,
                                std::vector<std::string>& copies) {
  scenario::DailyScenario daily(config);
  metrics::EventLog log;
  log.attach(*daily.ecocloud());
  ckpt::CheckpointManager manager(daily.simulator());
  daily.register_checkpoint(manager);
  register_event_log(manager, log);
  manager.on_saved = [&copies, path](const std::string& saved) {
    const std::string copy = path + "." + std::to_string(copies.size());
    std::ofstream out(copy, std::ios::binary | std::ios::trunc);
    std::ifstream in(saved, std::ios::binary);
    out << in.rdbuf();
    copies.push_back(copy);
  };
  manager.start_periodic(period_s, path);
  daily.run();
  return daily_result(daily, log);
}

/// Resume from one snapshot into a freshly built scenario and finish.
DailyResult resume_daily(const scenario::DailyConfig& config,
                         const std::string& snapshot) {
  scenario::DailyScenario daily(config);
  metrics::EventLog log;
  log.attach(*daily.ecocloud());
  ckpt::CheckpointManager manager(daily.simulator());
  daily.register_checkpoint(manager);
  register_event_log(manager, log);
  manager.restore(snapshot);
  // No output path: checkpoint events still fire (identical seq
  // consumption) but write nothing.
  daily.run_resumed();
  return daily_result(daily, log);
}

void remove_all(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) std::remove(path.c_str());
}

}  // namespace

// The tentpole guarantee: resuming from any snapshot of an interrupted run
// reproduces the uninterrupted run bit for bit — event log CSV bytes, every
// 30-minute sample, and every accumulated double compare with ==. The
// snapshot cadence (1800 s) straddles the 1 h warmup, so the first resume
// point exercises the "snapshot before the accounting reset" path.
TEST(CheckpointResume, DailyRunIsBitIdenticalFromEverySnapshot) {
  const scenario::DailyConfig config = resume_daily_config();
  const std::string path = temp_path("daily.ckpt");
  std::vector<std::string> copies;
  const DailyResult reference =
      run_daily_reference(config, 1800.0, path, copies);
  // 6 h / 1800 s = 12 snapshots (the last lands exactly on the horizon).
  ASSERT_GE(copies.size(), 10u);

  // Resume from before the warmup reset, right at it, mid-run, and from
  // the final snapshot.
  for (const std::size_t index :
       {std::size_t{0}, std::size_t{1}, copies.size() / 2, copies.size() - 1}) {
    SCOPED_TRACE("snapshot #" + std::to_string(index));
    const DailyResult resumed = resume_daily(config, copies[index]);
    expect_same(resumed, reference);
  }
  remove_all(copies);
  std::remove(path.c_str());
}

// The fast sampler adds deterministic state of its own — the dense
// membership order inside DataCenter and the controller's open-boot
// registry, both drawn from by index — so resume must reproduce that
// order exactly, not just the aggregate placement state.
TEST(CheckpointResume, FastSamplerRunIsBitIdenticalFromEverySnapshot) {
  scenario::DailyConfig config = resume_daily_config();
  config.params.fast_sampler = true;
  config.params.invite_group_size = 8;  // exercise Floyd's subset sampling
  const std::string path = temp_path("daily_fast.ckpt");
  std::vector<std::string> copies;
  const DailyResult reference =
      run_daily_reference(config, 1800.0, path, copies);
  ASSERT_GE(copies.size(), 10u);
  for (const std::size_t index :
       {std::size_t{0}, copies.size() / 2, copies.size() - 1}) {
    SCOPED_TRACE("snapshot #" + std::to_string(index));
    const DailyResult resumed = resume_daily(config, copies[index]);
    expect_same(resumed, reference);
  }
  remove_all(copies);
  std::remove(path.c_str());
}

// Snapshots are portable across trace-memory modes: a checkpoint taken by
// a materialized-TraceSet run restores into a streaming-cursor run (and
// vice versa) and finishes bit-identically. The streaming bank carries no
// snapshot state — it regenerates at step 0 and fast-forwards on first
// use — and config.streaming_traces is deliberately not in the digest.
TEST(CheckpointResume, SnapshotsArePortableAcrossTraceMemoryModes) {
  scenario::DailyConfig config = resume_daily_config();
  const std::string path = temp_path("daily_xmode.ckpt");
  std::vector<std::string> copies;
  const DailyResult reference =
      run_daily_reference(config, 1800.0, path, copies);
  ASSERT_GE(copies.size(), 3u);

  scenario::DailyConfig streaming_config = config;
  streaming_config.streaming_traces = true;
  for (const std::size_t index : {std::size_t{0}, copies.size() - 1}) {
    SCOPED_TRACE("snapshot #" + std::to_string(index));
    const DailyResult resumed = resume_daily(streaming_config, copies[index]);
    expect_same(resumed, reference);
  }
  remove_all(copies);
  std::remove(path.c_str());
}

// Chained resume: interrupt the *resumed* run again and resume from its
// own snapshot. Crash-safety must compose across generations of resumes.
TEST(CheckpointResume, DailyResumeOfAResumeStaysBitIdentical) {
  const scenario::DailyConfig config = resume_daily_config();
  const std::string path = temp_path("daily_chain.ckpt");
  std::vector<std::string> copies;
  const DailyResult reference =
      run_daily_reference(config, 2700.0, path, copies);
  ASSERT_GE(copies.size(), 3u);

  // First resume: restore snapshot #0 and let the run write its own
  // snapshots to a second path.
  std::vector<std::string> second_copies;
  const std::string second_path = temp_path("daily_chain2.ckpt");
  {
    scenario::DailyScenario daily(config);
    metrics::EventLog log;
    log.attach(*daily.ecocloud());
    ckpt::CheckpointManager manager(daily.simulator());
    daily.register_checkpoint(manager);
    register_event_log(manager, log);
    manager.restore(copies[0]);
    manager.on_saved = [&second_copies, &second_path](const std::string& saved) {
      const std::string copy =
          second_path + "." + std::to_string(second_copies.size());
      std::ofstream out(copy, std::ios::binary | std::ios::trunc);
      std::ifstream in(saved, std::ios::binary);
      out << in.rdbuf();
      second_copies.push_back(copy);
    };
    manager.set_output_path(second_path);
    daily.run_resumed();
    expect_same(daily_result(daily, log), reference);
  }
  ASSERT_GE(second_copies.size(), 2u);

  // Second generation: resume from a snapshot the resumed run wrote.
  const DailyResult resumed =
      resume_daily(config, second_copies[second_copies.size() - 2]);
  expect_same(resumed, reference);

  remove_all(copies);
  remove_all(second_copies);
  std::remove(path.c_str());
  std::remove(second_path.c_str());
}

// Satellite: property test — random checkpoint cadences (hence random
// interruption points measured in executed events) never perturb the
// final event log or aggregates.
TEST(CheckpointResume, PropertyRandomCadencesAndResumePoints) {
  scenario::DailyConfig config = resume_daily_config();
  // Smaller run: the property loop runs several full simulations.
  config.fleet.num_servers = 24;
  config.num_vms = 300;
  config.horizon_s = 3.0 * sim::kHour;
  config.warmup_s = 0.5 * sim::kHour;

  util::Rng rng(424242);
  for (int trial = 0; trial < 3; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    config.seed = 100 + static_cast<std::uint64_t>(trial);
    const double period_s = 300.0 + rng.uniform(0.0, 3000.0);
    const std::string path =
        temp_path("property_" + std::to_string(trial) + ".ckpt");
    std::vector<std::string> copies;
    const DailyResult reference =
        run_daily_reference(config, period_s, path, copies);
    ASSERT_FALSE(copies.empty());

    const std::size_t index = rng.index(copies.size());
    SCOPED_TRACE("period " + std::to_string(period_s) + " s, snapshot #" +
                 std::to_string(index));
    const DailyResult resumed = resume_daily(config, copies[index]);
    expect_same(resumed, reference);
    remove_all(copies);
    std::remove(path.c_str());
  }
}

// A run that never checkpoints must not even notice the subsystem exists:
// registering the manager without start_periodic changes nothing.
TEST(CheckpointResume, RegisteredButIdleManagerIsInvisible) {
  scenario::DailyConfig config = resume_daily_config();
  config.fleet.num_servers = 24;
  config.num_vms = 300;
  config.horizon_s = 2.0 * sim::kHour;
  config.warmup_s = 0.0;

  DailyResult bare;
  {
    scenario::DailyScenario daily(config);
    metrics::EventLog log;
    log.attach(*daily.ecocloud());
    daily.run();
    bare = daily_result(daily, log);
  }
  DailyResult registered;
  {
    scenario::DailyScenario daily(config);
    metrics::EventLog log;
    log.attach(*daily.ecocloud());
    ckpt::CheckpointManager manager(daily.simulator());
    daily.register_checkpoint(manager);
    register_event_log(manager, log);
    daily.run();
    registered = daily_result(daily, log);
  }
  expect_same(registered, bare);
}

// --- Bit-identical resume: consolidation scenario ----------------------------

namespace {

struct ConsResult {
  double energy_joules = 0.0;
  double vm_seconds = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t rejections = 0;
  std::uint64_t messages = 0;
  std::uint64_t executed_events = 0;
  std::vector<metrics::Sample> samples;
};

ConsResult cons_result(scenario::ConsolidationScenario& cons) {
  ConsResult result;
  result.energy_joules = cons.datacenter().energy_joules();
  result.vm_seconds = cons.datacenter().vm_seconds();
  result.arrivals = cons.open_system().total_arrivals();
  result.departures = cons.open_system().total_departures();
  result.rejections = cons.open_system().total_rejections();
  result.messages = cons.controller().messages().total();
  result.executed_events = cons.simulator().executed_events();
  result.samples = cons.collector().samples();
  return result;
}

}  // namespace

TEST(CheckpointResume, ConsolidationRunIsBitIdentical) {
  scenario::ConsolidationConfig config;
  config.num_servers = 30;
  config.initial_vms = 300;
  config.horizon_s = 4.0 * sim::kHour;
  config.mean_lifetime_s = 1.0 * sim::kHour;
  config.seed = 11;

  const std::string path = temp_path("cons.ckpt");
  std::vector<std::string> copies;
  ConsResult reference;
  {
    scenario::ConsolidationScenario cons(config);
    ckpt::CheckpointManager manager(cons.simulator());
    cons.register_checkpoint(manager);
    manager.on_saved = [&copies, path](const std::string& saved) {
      const std::string copy = path + "." + std::to_string(copies.size());
      std::ofstream out(copy, std::ios::binary | std::ios::trunc);
      std::ifstream in(saved, std::ios::binary);
      out << in.rdbuf();
      copies.push_back(copy);
    };
    manager.start_periodic(1800.0, path);
    cons.run();
    reference = cons_result(cons);
  }
  ASSERT_GE(copies.size(), 4u);

  for (const std::size_t index : {std::size_t{0}, copies.size() / 2,
                                  copies.size() - 1}) {
    SCOPED_TRACE("snapshot #" + std::to_string(index));
    scenario::ConsolidationScenario cons(config);
    ckpt::CheckpointManager manager(cons.simulator());
    cons.register_checkpoint(manager);
    manager.restore(copies[index]);
    cons.run_resumed();
    const ConsResult resumed = cons_result(cons);
    EXPECT_EQ(resumed.energy_joules, reference.energy_joules);
    EXPECT_EQ(resumed.vm_seconds, reference.vm_seconds);
    EXPECT_EQ(resumed.arrivals, reference.arrivals);
    EXPECT_EQ(resumed.departures, reference.departures);
    EXPECT_EQ(resumed.rejections, reference.rejections);
    EXPECT_EQ(resumed.messages, reference.messages);
    EXPECT_EQ(resumed.executed_events, reference.executed_events);
    ASSERT_EQ(resumed.samples.size(), reference.samples.size());
    for (std::size_t i = 0; i < reference.samples.size(); ++i) {
      EXPECT_EQ(resumed.samples[i].power_w, reference.samples[i].power_w);
      EXPECT_EQ(resumed.samples[i].overall_load, reference.samples[i].overall_load);
      EXPECT_EQ(resumed.samples[i].active_servers,
                reference.samples[i].active_servers);
    }
  }
  remove_all(copies);
  std::remove(path.c_str());
}

// --- Consistency enforcement at restore --------------------------------------

namespace {

/// One early snapshot of a short daily run, for the rejection tests.
std::string make_daily_snapshot(const scenario::DailyConfig& config,
                                const std::string& path, bool with_event_log) {
  scenario::DailyScenario daily(config);
  metrics::EventLog log;
  log.attach(*daily.ecocloud());
  ckpt::CheckpointManager manager(daily.simulator());
  daily.register_checkpoint(manager);
  if (with_event_log) register_event_log(manager, log);
  manager.start_periodic(1800.0, path);
  daily.run();
  return path;
}

scenario::DailyConfig tiny_daily() {
  scenario::DailyConfig config;
  config.fleet.num_servers = 12;
  config.num_vms = 150;
  config.horizon_s = 1.0 * sim::kHour;
  config.seed = 5;
  return config;
}

}  // namespace

TEST(CheckpointConsistency, DifferentConfigDigestRejected) {
  const std::string path = temp_path("digest.ckpt");
  scenario::DailyConfig config = tiny_daily();
  make_daily_snapshot(config, path, /*with_event_log=*/false);

  config.seed = 6;  // different experiment
  scenario::DailyScenario daily(config);
  ckpt::CheckpointManager manager(daily.simulator());
  daily.register_checkpoint(manager);
  try {
    manager.restore(path);
    FAIL() << "digest mismatch accepted";
  } catch (const ckpt::SnapshotError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("different configuration"), std::string::npos) << what;
    EXPECT_NE(what.find("stored:"), std::string::npos) << what;
    EXPECT_NE(what.find("current:"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(CheckpointConsistency, SnapshotWithEventLogNeedsEventLogRegistered) {
  const std::string path = temp_path("needs_log.ckpt");
  const scenario::DailyConfig config = tiny_daily();
  make_daily_snapshot(config, path, /*with_event_log=*/true);

  scenario::DailyScenario daily(config);
  ckpt::CheckpointManager manager(daily.simulator());
  daily.register_checkpoint(manager);  // no event log this time
  try {
    manager.restore(path);
    FAIL() << "dropped the stored event_log section silently";
  } catch (const ckpt::SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("carries section 'event_log'"),
              std::string::npos)
        << error.what();
  }
  std::remove(path.c_str());
}

TEST(CheckpointConsistency, SnapshotWithoutEventLogRejectsEventLogRegistration) {
  const std::string path = temp_path("no_log.ckpt");
  const scenario::DailyConfig config = tiny_daily();
  make_daily_snapshot(config, path, /*with_event_log=*/false);

  scenario::DailyScenario daily(config);
  metrics::EventLog log;
  log.attach(*daily.ecocloud());
  ckpt::CheckpointManager manager(daily.simulator());
  daily.register_checkpoint(manager);
  register_event_log(manager, log);
  try {
    manager.restore(path);
    FAIL() << "resumed with an event log the original run did not have";
  } catch (const ckpt::SnapshotError& error) {
    EXPECT_NE(std::string(error.what()).find("missing section 'event_log'"),
              std::string::npos)
        << error.what();
  }
  std::remove(path.c_str());
}

TEST(CheckpointConsistency, RestoreTwiceRejected) {
  const std::string path = temp_path("twice.ckpt");
  const scenario::DailyConfig config = tiny_daily();
  make_daily_snapshot(config, path, /*with_event_log=*/false);

  scenario::DailyScenario daily(config);
  ckpt::CheckpointManager manager(daily.simulator());
  daily.register_checkpoint(manager);
  manager.restore(path);
  EXPECT_THROW(manager.restore(path), std::exception);
  std::remove(path.c_str());
}

TEST(CheckpointConsistency, CorruptedSnapshotNamesTheSection) {
  const std::string path = temp_path("named.ckpt");
  const scenario::DailyConfig config = tiny_daily();
  make_daily_snapshot(config, path, /*with_event_log=*/false);

  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x01;
  write_file(path, bytes);
  scenario::DailyScenario daily(config);
  ckpt::CheckpointManager manager(daily.simulator());
  daily.register_checkpoint(manager);
  try {
    manager.restore(path);
    FAIL() << "corrupted snapshot accepted";
  } catch (const ckpt::SnapshotError& error) {
    // Either a CRC failure naming a section or a structural error — both
    // carry the path for actionable diagnostics.
    EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
        << error.what();
  }
  std::remove(path.c_str());
}

// --- Runtime auditor ---------------------------------------------------------

TEST(Auditor, ParseAction) {
  EXPECT_EQ(ckpt::parse_audit_action("log"), ckpt::AuditAction::kLog);
  EXPECT_EQ(ckpt::parse_audit_action("abort"), ckpt::AuditAction::kAbort);
  EXPECT_EQ(ckpt::parse_audit_action("heal"), ckpt::AuditAction::kHeal);
  EXPECT_THROW(ckpt::parse_audit_action("explode"), std::invalid_argument);
  EXPECT_STREQ(ckpt::to_string(ckpt::AuditAction::kAbort), "abort");
}

TEST(Auditor, CleanDailyRunPassesEveryAudit) {
  scenario::DailyConfig config = resume_daily_config();
  config.fleet.num_servers = 24;
  config.num_vms = 300;
  config.horizon_s = 3.0 * sim::kHour;

  scenario::DailyScenario daily(config);
  ckpt::AuditorConfig audit;
  audit.period_s = 600.0;
  audit.action = ckpt::AuditAction::kAbort;  // corruption would kill the test
  ckpt::RuntimeAuditor auditor(daily.simulator(), daily.datacenter(), audit);
  auditor.attach_controller(daily.ecocloud());
  if (daily.fault_injector() != nullptr) {
    auditor.attach_redeploy(&daily.fault_injector()->redeploy());
  }
  auditor.start();
  daily.run();

  EXPECT_GE(auditor.stats().audits_run, 17u);  // 3 h / 600 s, minus warmup edge
  EXPECT_EQ(auditor.stats().audits_failed, 0u);
  EXPECT_EQ(auditor.stats().heals_applied, 0u);
}

// Acceptance gate: the auditor stays green on the paper-scale experiment
// (same fleet/VM shape as the Sec. III regression run).
TEST(Auditor, PassesOnPaperScaleDaily) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 60;
  config.num_vms = 900;
  config.horizon_s = 48.0 * sim::kHour;
  config.seed = 20130520;

  scenario::DailyScenario daily(config);
  ckpt::AuditorConfig audit;
  audit.period_s = 2.0 * sim::kHour;
  audit.action = ckpt::AuditAction::kAbort;
  ckpt::RuntimeAuditor auditor(daily.simulator(), daily.datacenter(), audit);
  auditor.attach_controller(daily.ecocloud());
  auditor.start();
  daily.run();

  EXPECT_GE(auditor.stats().audits_run, 23u);
  EXPECT_EQ(auditor.stats().audits_failed, 0u);
}

TEST(Auditor, StrictModeDetectsUnownedVm) {
  scenario::DailyConfig config = tiny_daily();
  scenario::DailyScenario daily(config);
  daily.run();

  ckpt::AuditorConfig audit;  // period 0: manual audits only
  audit.strict_vm_accounting = true;
  ckpt::RuntimeAuditor auditor(daily.simulator(), daily.datacenter(), audit);
  auditor.attach_controller(daily.ecocloud());
  EXPECT_TRUE(auditor.run_audit().empty());

  // A VM that exists but is neither placed, boot-queued, nor pending
  // redeploy is a leak; strict accounting must flag it.
  (void)daily.datacenter().create_vm(500.0, 512.0);
  const std::vector<std::string> failures = auditor.run_audit();
  ASSERT_FALSE(failures.empty());
  bool mentions_ownership = false;
  for (const std::string& failure : failures) {
    if (failure.find("neither placed") != std::string::npos) {
      mentions_ownership = true;
    }
  }
  EXPECT_TRUE(mentions_ownership) << failures.front();
  EXPECT_EQ(auditor.stats().audits_run, 2u);
  EXPECT_EQ(auditor.stats().audits_failed, 1u);

  // Relaxed accounting (the consolidation default) accepts unowned VMs.
  ckpt::AuditorConfig relaxed;
  relaxed.strict_vm_accounting = false;
  ckpt::RuntimeAuditor lenient(daily.simulator(), daily.datacenter(), relaxed);
  lenient.attach_controller(daily.ecocloud());
  EXPECT_TRUE(lenient.run_audit().empty());
}

TEST(Auditor, HealRepairsOnlyDerivableState) {
  scenario::DailyConfig config = tiny_daily();
  scenario::DailyScenario daily(config);
  daily.run();

  // True state corruption (an unowned VM) is not cache drift: heal runs,
  // repairs nothing, and the failure is still reported.
  (void)daily.datacenter().create_vm(500.0, 512.0);
  ckpt::AuditorConfig audit;
  audit.action = ckpt::AuditAction::kHeal;
  ckpt::RuntimeAuditor auditor(daily.simulator(), daily.datacenter(), audit);
  auditor.attach_controller(daily.ecocloud());
  const std::vector<std::string> failures = auditor.run_audit();
  EXPECT_FALSE(failures.empty());
  EXPECT_EQ(auditor.stats().heals_applied, 1u);
  EXPECT_EQ(daily.datacenter().heal_caches(), 0u);  // caches were never wrong
}

TEST(Auditor, StateSurvivesCheckpointRoundTrip) {
  sim::Simulator sim;
  dc::DataCenter dc;
  ckpt::AuditorConfig audit;
  ckpt::RuntimeAuditor auditor(sim, dc, audit);
  (void)auditor.run_audit();
  (void)auditor.run_audit();

  util::BinWriter w;
  auditor.save_state(w);
  ckpt::RuntimeAuditor restored(sim, dc, audit);
  util::BinReader r(w.buffer());
  restored.load_state(r);
  EXPECT_EQ(restored.stats().audits_run, 2u);
  EXPECT_EQ(restored.stats().audits_failed, auditor.stats().audits_failed);
}

// --- Watchdog ----------------------------------------------------------------

TEST(Watchdog, BeatsKeepItQuiet) {
  ckpt::Watchdog::Config config;
  config.stall_seconds = 0.3;
  ckpt::Watchdog watchdog(config);
  watchdog.arm();
  for (int i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    watchdog.beat(static_cast<std::uint64_t>(i), static_cast<double>(i));
  }
  watchdog.disarm();
  EXPECT_FALSE(watchdog.armed());
  // Destructor joins the monitor thread; reaching here without an abort
  // is the assertion.
}

TEST(Watchdog, DisarmedWatchdogIgnoresSilence) {
  ckpt::Watchdog::Config config;
  config.stall_seconds = 0.1;
  ckpt::Watchdog watchdog(config);  // never armed
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
}

TEST(WatchdogDeathTest, AbortsOnStallWithDiagnostic) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ckpt::Watchdog::Config config;
        config.stall_seconds = 0.2;
        ckpt::Watchdog watchdog(config);
        watchdog.beat(42, 1234.0);
        watchdog.arm();
        std::this_thread::sleep_for(std::chrono::seconds(5));
      },
      "stalled");
}

}  // namespace
