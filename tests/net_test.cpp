// Tests for the rack topology module and its integration with the
// controller (footnote-1 group invitations, bandwidth-aware migrations).

#include <gtest/gtest.h>

#include "ecocloud/net/topology.hpp"
#include "ecocloud/scenario/scenario.hpp"

using namespace ecocloud;

TEST(Topology, RoundRobinLayout) {
  net::TopologyConfig config;
  config.num_racks = 3;
  net::Topology topology(10, config);
  EXPECT_EQ(topology.num_racks(), 3u);
  EXPECT_EQ(topology.num_servers(), 10u);
  EXPECT_EQ(topology.rack_of(0), 0u);
  EXPECT_EQ(topology.rack_of(1), 1u);
  EXPECT_EQ(topology.rack_of(2), 2u);
  EXPECT_EQ(topology.rack_of(3), 0u);
  EXPECT_EQ(topology.servers_in_rack(0).size(), 4u);  // 0, 3, 6, 9
  EXPECT_EQ(topology.servers_in_rack(1).size(), 3u);
  EXPECT_TRUE(topology.same_rack(0, 9));
  EXPECT_FALSE(topology.same_rack(0, 1));
}

TEST(Topology, MoreRacksThanServersCollapses) {
  net::TopologyConfig config;
  config.num_racks = 10;
  net::Topology topology(4, config);
  EXPECT_EQ(topology.num_racks(), 4u);
  for (dc::ServerId s = 0; s < 4; ++s) {
    EXPECT_EQ(topology.servers_in_rack(topology.rack_of(s)).size(), 1u);
  }
}

TEST(Topology, BandwidthAndTransferTimes) {
  net::TopologyConfig config;
  config.num_racks = 2;
  config.intra_rack_gbps = 10.0;  // 1250 MB/s
  config.inter_rack_gbps = 4.0;   // 500 MB/s
  net::Topology topology(4, config);
  // Servers 0 and 2 share rack 0; 0 and 1 do not.
  EXPECT_DOUBLE_EQ(topology.bandwidth_mb_per_s(0, 2), 1250.0);
  EXPECT_DOUBLE_EQ(topology.bandwidth_mb_per_s(0, 1), 500.0);
  EXPECT_DOUBLE_EQ(topology.transfer_time_s(0, 2, 2500.0), 2.0);
  EXPECT_DOUBLE_EQ(topology.transfer_time_s(0, 1, 2500.0), 5.0);
  EXPECT_DOUBLE_EQ(topology.transfer_time_s(0, 1, 0.0), 0.0);
}

TEST(Topology, Validation) {
  EXPECT_THROW(net::Topology(0), std::invalid_argument);
  net::TopologyConfig bad;
  bad.num_racks = 0;
  EXPECT_THROW(net::Topology(4, bad), std::invalid_argument);
  net::TopologyConfig bad_bw;
  bad_bw.inter_rack_gbps = 0.0;
  EXPECT_THROW(net::Topology(4, bad_bw), std::invalid_argument);
  net::Topology topology(4);
  EXPECT_THROW(topology.rack_of(99), std::invalid_argument);
  EXPECT_THROW(topology.transfer_time_s(0, 1, -1.0), std::invalid_argument);
}

TEST(TopologyIntegration, RackScopedInvitationsContactOneRack) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 32;
  config.num_vms = 480;
  config.horizon_s = 3.0 * sim::kHour;
  net::TopologyConfig topology;
  topology.num_racks = 4;
  config.topology = topology;
  scenario::DailyScenario daily(config);
  daily.run();

  ASSERT_NE(daily.topology(), nullptr);
  EXPECT_EQ(daily.topology()->num_racks(), 4u);
  // An invitation round can contact at most one rack's worth of servers.
  const core::MessageLog& messages = daily.ecocloud()->messages();
  const double per_round = static_cast<double>(messages.invitations_sent) /
                           static_cast<double>(messages.invitation_rounds);
  EXPECT_LE(per_round, 8.0 + 1e-9);  // 32 servers / 4 racks
  // The system still consolidates and hosts everything.
  EXPECT_EQ(daily.datacenter().placed_vm_count(), 480u);
  EXPECT_LT(daily.datacenter().active_server_count(), 32u);
}

TEST(TopologyIntegration, MigrationTakesTransferTimeIntoAccount) {
  // Both servers share a rack (destination searches are rack-scoped); the
  // migration must take the fixed latency plus the RAM transfer over the
  // intra-rack link.
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  const auto src = datacenter.add_server(6, 2000.0, 32768.0);
  const auto dst = datacenter.add_server(6, 2000.0, 32768.0);
  net::TopologyConfig tconfig;
  tconfig.num_racks = 1;
  tconfig.intra_rack_gbps = 1.0;  // 125 MB/s -> 4000 MB take 32 s
  net::Topology topology(2, tconfig);

  core::EcoCloudParams params;
  params.monitor_period_s = 5.0;
  params.migration_latency_s = 10.0;
  core::EcoCloudController controller(simulator, datacenter, params,
                                      util::Rng(3));
  controller.set_topology(&topology);

  controller.force_activate(src);
  controller.force_activate(dst);
  const auto vm = datacenter.create_vm(1000.0, 4000.0);  // 4 GB of RAM
  datacenter.place_vm(0.0, vm, src);
  const auto anchor = datacenter.create_vm(0.675 * 12000.0, 1000.0);
  datacenter.place_vm(0.0, anchor, dst);

  double started = -1.0, completed = -1.0;
  controller.events().on_migration_start = [&](sim::SimTime t, dc::VmId, bool) {
    started = t;
  };
  controller.events().on_migration_complete = [&](sim::SimTime t, dc::VmId, bool) {
    completed = t;
  };
  controller.start();
  simulator.run_until(sim::kHour);
  ASSERT_GE(started, 0.0);
  ASSERT_GE(completed, 0.0);
  // 10 s fixed + 4000 MB / 125 MB/s = 42 s total.
  EXPECT_NEAR(completed - started, 42.0, 1e-6);
}

TEST(TopologyIntegration, MigrationDestinationsStayInRack) {
  // Three racks; the only attractive destination outside the source's
  // rack must never be chosen for a low migration.
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  // rack 0: servers 0, 3; rack 1: 1, 4; rack 2: 2, 5.
  for (int i = 0; i < 6; ++i) datacenter.add_server(6, 2000.0);
  net::TopologyConfig tconfig;
  tconfig.num_racks = 3;
  net::Topology topology(6, tconfig);

  core::EcoCloudParams params;
  params.monitor_period_s = 5.0;
  core::EcoCloudController controller(simulator, datacenter, params,
                                      util::Rng(5));
  controller.set_topology(&topology);
  controller.force_activate(0);  // source, rack 0
  controller.force_activate(3);  // same-rack destination
  controller.force_activate(1);  // other-rack destination (also attractive)

  const auto vm = datacenter.create_vm(1000.0);
  datacenter.place_vm(0.0, vm, 0);
  for (dc::ServerId s : {dc::ServerId{3}, dc::ServerId{1}}) {
    const auto anchor = datacenter.create_vm(0.675 * 12000.0);
    datacenter.place_vm(0.0, anchor, s);
  }
  controller.start();
  simulator.run_until(2.0 * sim::kHour);
  EXPECT_EQ(datacenter.vm(vm).host, 3u) << "migrated out of its rack";
}
