// Tests for the centralized baselines: placement heuristics, MM selection,
// double-threshold controller.

#include <gtest/gtest.h>

#include "ecocloud/baseline/centralized_controller.hpp"
#include "ecocloud/baseline/mm_selection.hpp"
#include "ecocloud/baseline/placement.hpp"

namespace baseline = ecocloud::baseline;
namespace dc = ecocloud::dc;
namespace sim = ecocloud::sim;
using ecocloud::util::Rng;

namespace {

dc::ServerId add_active(dc::DataCenter& d, unsigned cores, double utilization) {
  const auto s = d.add_server(cores, 2000.0);
  d.start_booting(0.0, s);
  d.finish_booting(0.0, s);
  if (utilization > 0.0) {
    const auto v = d.create_vm(utilization * d.server(s).capacity_mhz());
    d.place_vm(0.0, v, s);
  }
  return s;
}

}  // namespace

// ----------------------------------------------------------------- placement

TEST(Placement, FfdPicksFirstFitting) {
  dc::DataCenter d;
  add_active(d, 4, 0.89);  // cannot take anything meaningful under cap 0.9
  const auto second = add_active(d, 4, 0.3);
  add_active(d, 4, 0.1);
  const auto chosen = baseline::choose_server(
      d, 2000.0, 0.9, baseline::PlacementPolicy::kFirstFitDecreasing);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, second);
}

TEST(Placement, BfdMinimizesPowerIncrease) {
  dc::DataCenter d;
  // Equal idle fraction: power increase = (peak-idle) * delta_u. A VM adds
  // less utilization on a bigger server, but the bigger server also has a
  // larger dynamic range; with peak = 100 + 20*cores:
  //  8-core: delta_u = 2000/16000 = 0.125, range 78 -> dP = 9.75 W
  //  4-core: delta_u = 2000/8000 = 0.25, range 54  -> dP = 13.5 W
  add_active(d, 4, 0.3);
  const auto big = add_active(d, 8, 0.3);
  const auto chosen = baseline::choose_server(
      d, 2000.0, 0.9, baseline::PlacementPolicy::kBestFitDecreasing);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, big);
}

TEST(Placement, BfdTieBreaksTowardHigherUtilization) {
  dc::DataCenter d;
  add_active(d, 4, 0.2);
  const auto fuller = add_active(d, 4, 0.6);
  const auto chosen = baseline::choose_server(
      d, 800.0, 0.9, baseline::PlacementPolicy::kBestFitDecreasing);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(*chosen, fuller);  // identical power delta, tighter packing wins
}

TEST(Placement, RespectsUtilizationCap) {
  dc::DataCenter d;
  add_active(d, 4, 0.85);
  for (auto policy : {baseline::PlacementPolicy::kBestFitDecreasing,
                      baseline::PlacementPolicy::kFirstFitDecreasing,
                      baseline::PlacementPolicy::kRandomFit}) {
    const auto chosen = baseline::choose_server(d, 1000.0, 0.9, policy);
    EXPECT_FALSE(chosen.has_value()) << baseline::to_string(policy);
  }
}

TEST(Placement, IgnoresInactiveServers) {
  dc::DataCenter d;
  d.add_server(8, 2000.0);  // hibernated
  const auto chosen = baseline::choose_server(
      d, 100.0, 0.9, baseline::PlacementPolicy::kFirstFitDecreasing);
  EXPECT_FALSE(chosen.has_value());
}

TEST(Placement, RandomFitIsAFit) {
  dc::DataCenter d;
  add_active(d, 4, 0.89);
  const auto ok = add_active(d, 4, 0.2);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto chosen = baseline::choose_server(
        d, 2000.0, 0.9, baseline::PlacementPolicy::kRandomFit, seed);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_EQ(*chosen, ok);
  }
}

TEST(Placement, SortByDemandDecreasing) {
  dc::DataCenter d;
  const auto a = d.create_vm(100.0);
  const auto b = d.create_vm(300.0);
  const auto c = d.create_vm(200.0);
  const auto sorted = baseline::sort_by_demand_decreasing(d, {a, b, c});
  EXPECT_EQ(sorted, (std::vector<dc::VmId>{b, c, a}));
}

TEST(Placement, PolicyNames) {
  EXPECT_STREQ(baseline::to_string(baseline::PlacementPolicy::kBestFitDecreasing),
               "MBFD");
  EXPECT_STREQ(baseline::to_string(baseline::PlacementPolicy::kFirstFitDecreasing),
               "FFD");
}

// -------------------------------------------------------------- MM selection

TEST(MmSelection, EmptyWhenNotOverThreshold) {
  dc::DataCenter d;
  const auto s = add_active(d, 4, 0.5);
  EXPECT_TRUE(baseline::select_vms_mm(d, s, 0.9).empty());
}

TEST(MmSelection, PicksCheapestSufficientVm) {
  dc::DataCenter d;
  const auto s = add_active(d, 4, 0.0);  // capacity 8000
  const auto small = d.create_vm(900.0);
  const auto medium = d.create_vm(1500.0);
  const auto large = d.create_vm(5500.0);
  for (auto v : {small, medium, large}) d.place_vm(0.0, v, s);
  // demand 7900, threshold 0.9 -> excess 700. Cheapest sufficient VM is
  // `small` (900 >= 700, overshoot 200 < medium's 800 < large's 4800).
  const auto picked = baseline::select_vms_mm(d, s, 0.9);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], small);
}

TEST(MmSelection, EvictsLargestWhenNoSingleSuffices) {
  dc::DataCenter d;
  const auto s = add_active(d, 4, 0.0);
  // 10 x 1000 = 10000: ratio 1.25, excess vs 0.8 cap = 3600.
  std::vector<dc::VmId> vms;
  for (int i = 0; i < 10; ++i) {
    vms.push_back(d.create_vm(1000.0));
    d.place_vm(0.0, vms.back(), s);
  }
  const auto picked = baseline::select_vms_mm(d, s, 0.8);
  // Needs 4 evictions of 1000 to reach 6400 <= 6400.
  EXPECT_EQ(picked.size(), 4u);
}

TEST(MmSelection, SkipsMigratingVms) {
  dc::DataCenter d;
  const auto s = add_active(d, 4, 0.0);
  const auto other = add_active(d, 4, 0.0);
  const auto big = d.create_vm(7000.0);
  const auto small = d.create_vm(900.0);
  d.place_vm(0.0, big, s);
  d.place_vm(0.0, small, s);
  d.begin_migration(0.0, big, other);
  const auto picked = baseline::select_vms_mm(d, s, 0.9);
  // Only `small` is selectable; the remaining pool cannot reach the
  // threshold so it evicts everything movable.
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], small);
}

TEST(MmSelection, ValidatesThreshold) {
  dc::DataCenter d;
  const auto s = add_active(d, 4, 0.5);
  EXPECT_THROW(baseline::select_vms_mm(d, s, 0.0), std::invalid_argument);
  EXPECT_THROW(baseline::select_vms_mm(d, s, 1.5), std::invalid_argument);
}

// ------------------------------------------------------ centralized control

TEST(Centralized, ParamsValidation) {
  baseline::CentralizedParams p;
  EXPECT_NO_THROW(p.validate());
  p.lower_threshold = 0.99;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Centralized, DeployUsesPolicyAndWakes) {
  sim::Simulator simulator;
  dc::DataCenter d;
  d.add_server(6, 2000.0);
  baseline::CentralizedParams p;
  baseline::CentralizedController controller(simulator, d, p, Rng(1));
  const auto vm = d.create_vm(1000.0);
  EXPECT_TRUE(controller.deploy_vm(vm));  // wakes the sleeper and queues
  EXPECT_EQ(d.booting_server_count(), 1u);
  simulator.run_until(p.boot_time_s + 1.0);
  EXPECT_TRUE(d.vm(vm).placed());
}

TEST(Centralized, ReoptimizeRelievesOverload) {
  sim::Simulator simulator;
  dc::DataCenter d;
  const auto hot = add_active(d, 6, 0.0);
  add_active(d, 6, 0.3);
  baseline::CentralizedParams p;
  baseline::CentralizedController controller(simulator, d, p, Rng(2));
  for (int i = 0; i < 12; ++i) {
    const auto vm = d.create_vm(1000.0);
    d.place_vm(0.0, vm, hot);  // ratio 1.0 > upper 0.95
  }
  controller.reoptimize();
  simulator.run_until(p.migration_latency_s + 1.0);
  EXPECT_LE(d.server(hot).demand_ratio(), 0.95 + 1e-9);
  EXPECT_GT(controller.migrations(), 0u);
}

TEST(Centralized, ReoptimizeEvacuatesUnderloaded) {
  sim::Simulator simulator;
  dc::DataCenter d;
  const auto lightly = add_active(d, 6, 0.2);
  add_active(d, 6, 0.6);
  baseline::CentralizedParams p;
  baseline::CentralizedController controller(simulator, d, p, Rng(3));
  controller.reoptimize();
  simulator.run_until(p.migration_latency_s + 1.0);
  EXPECT_TRUE(d.server(lightly).hibernated());
}

TEST(Centralized, EvacuationAbortsWhenVmsDoNotFit) {
  sim::Simulator simulator;
  dc::DataCenter d;
  const auto lightly = add_active(d, 6, 0.4);  // 4800 MHz in one VM
  add_active(d, 6, 0.8);                       // cannot absorb 4800 under 0.9
  baseline::CentralizedParams p;
  baseline::CentralizedController controller(simulator, d, p, Rng(4));
  controller.reoptimize();
  simulator.run_until(p.migration_latency_s + 1.0);
  EXPECT_TRUE(d.server(lightly).active());
  EXPECT_EQ(controller.migrations(), 0u);
}

TEST(Centralized, PeriodicReoptimizationConsolidates) {
  sim::Simulator simulator;
  dc::DataCenter d;
  // Four servers each at 20%: everything fits on one.
  std::vector<dc::ServerId> servers;
  for (int i = 0; i < 4; ++i) servers.push_back(add_active(d, 6, 0.2));
  baseline::CentralizedParams p;
  baseline::CentralizedController controller(simulator, d, p, Rng(5));
  controller.start();
  simulator.run_until(2.0 * sim::kHour);
  EXPECT_LE(d.active_server_count(), 2u);
}

TEST(Centralized, DepartVmAndHibernate) {
  sim::Simulator simulator;
  dc::DataCenter d;
  const auto s = add_active(d, 6, 0.0);
  baseline::CentralizedParams p;
  baseline::CentralizedController controller(simulator, d, p, Rng(6));
  const auto vm = d.create_vm(1000.0);
  d.place_vm(0.0, vm, s);
  controller.depart_vm(vm);
  EXPECT_FALSE(d.vm(vm).placed());
  EXPECT_TRUE(d.server(s).hibernated());
}
