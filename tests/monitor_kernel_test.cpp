// Lockstep property test for the columnar monitor kernel (DESIGN.md §17):
// on randomized fleets the dispatched kernel (AVX2 where the host has it)
// must match the portable scalar reference bit for bit — the u_eff doubles
// AND the class bytes. The header argues the two builds are identical by
// construction (divide/compare/select only, no FMA contraction); this test
// enforces it, and the engine_regression_forced_scalar ctest leg replays
// the golden pins with ECOCLOUD_FORCE_SCALAR_KERNEL=1 for the same reason.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ecocloud/dc/monitor_kernel.hpp"
#include "ecocloud/dc/server.hpp"
#include "ecocloud/util/rng.hpp"

namespace dc = ecocloud::dc;
using ecocloud::util::Rng;

namespace {

constexpr std::uint8_t kHibernated = 0;
constexpr std::uint8_t kBooting = 1;
constexpr std::uint8_t kActive = 2;
constexpr std::uint8_t kFailed = 3;

/// A random fleet exercising every class: mixed state bytes (the kernel
/// must map everything but active to kSkip), empty and loaded servers,
/// and demands straddling 0, Tl·C, Th·C, C, and beyond (the upper clamp).
dc::ServerSoA random_fleet(Rng& rng, std::size_t n, double tl, double th) {
  dc::ServerSoA soa;
  for (std::size_t i = 0; i < n; ++i) {
    const double capacity = 4000.0 * static_cast<double>(1 + rng.index(4));
    double demand = 0.0;
    switch (rng.index(6)) {
      case 0: demand = 0.0; break;
      case 1: demand = tl * capacity; break;  // exactly on the low edge
      case 2: demand = th * capacity; break;  // exactly on the high edge
      case 3: demand = rng.uniform(0.0, capacity); break;
      case 4: demand = capacity; break;
      default: demand = rng.uniform(capacity, 2.0 * capacity); break;
    }
    const std::uint8_t states[] = {kHibernated, kBooting, kActive, kActive,
                                   kActive, kFailed};
    soa.state.push_back(states[rng.index(6)]);
    soa.vm_count.push_back(static_cast<std::uint32_t>(rng.index(3)));
    soa.demand_mhz.push_back(demand);
    soa.capacity_mhz.push_back(capacity);
  }
  return soa;
}

}  // namespace

TEST(MonitorKernel, ReportsARealKernelName) {
  const std::string name = dc::monitor_kernel_name();
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
}

TEST(MonitorKernel, DispatchMatchesScalarReferenceBitForBit) {
  Rng rng(20260807);
  for (int round = 0; round < 64; ++round) {
    const double tl = rng.uniform(0.05, 0.6);
    const double th = rng.uniform(tl + 0.05, 0.99);
    // Sizes around the SIMD width force every tail-handling path.
    const std::size_t n = 1 + rng.index(133);
    const dc::ServerSoA soa = random_fleet(rng, n, tl, th);

    // Sub-ranges too: the controller dispatches per dirty range, so the
    // kernels must agree at arbitrary unaligned [begin, end).
    const std::size_t begin = rng.index(n);
    const std::size_t end = begin + 1 + rng.index(n - begin);

    std::vector<double> u_fast(n, -1.0);
    std::vector<double> u_ref(n, -1.0);
    std::vector<std::uint8_t> c_fast(n, 255);
    std::vector<std::uint8_t> c_ref(n, 255);
    dc::monitor_classify(soa, begin, end, tl, th, u_fast.data(), c_fast.data());
    dc::monitor_classify_scalar(soa, begin, end, tl, th, u_ref.data(),
                                c_ref.data());

    // memcmp, not ==: bit-for-bit is the contract the golden event-stream
    // pins rest on, and it also proves neither kernel wrote outside the
    // requested range (the sentinel values still match there).
    ASSERT_EQ(std::memcmp(u_fast.data(), u_ref.data(), n * sizeof(double)), 0)
        << "round " << round << " n=" << n << " [" << begin << "," << end
        << ")";
    ASSERT_EQ(std::memcmp(c_fast.data(), c_ref.data(), n), 0)
        << "round " << round << " n=" << n << " [" << begin << "," << end
        << ")";
  }
}

TEST(MonitorKernel, ClassifiesBandEdgesAndDeadServersExactly) {
  const double tl = 0.5;
  const double th = 0.95;
  dc::ServerSoA soa;
  const auto add = [&](std::uint8_t state, std::uint32_t vms, double demand) {
    soa.state.push_back(state);
    soa.vm_count.push_back(vms);
    soa.demand_mhz.push_back(demand);
    soa.capacity_mhz.push_back(10000.0);
  };
  add(kActive, 1, 5000.0);       // u == Tl: in band (strict inequality)
  add(kActive, 1, 9500.0);       // u == Th: in band
  add(kActive, 1, 4999.0);       // u < Tl
  add(kActive, 1, 9501.0);       // u > Th
  add(kActive, 1, 20000.0);      // clamps to u == 1.0, high
  add(kActive, 0, 9999.0);       // hosts nothing: skip despite the demand
  add(kHibernated, 1, 9999.0);   // not active: skip
  add(kBooting, 1, 9999.0);      // not active: skip
  add(kFailed, 1, 9999.0);       // not active: skip

  std::vector<double> u(soa.size());
  std::vector<std::uint8_t> cls(soa.size());
  dc::monitor_classify(soa, 0, soa.size(), tl, th, u.data(), cls.data());

  using dc::MonitorClass;
  const MonitorClass expected[] = {
      MonitorClass::kInBand, MonitorClass::kInBand, MonitorClass::kLow,
      MonitorClass::kHigh,   MonitorClass::kHigh,   MonitorClass::kSkip,
      MonitorClass::kSkip,   MonitorClass::kSkip,   MonitorClass::kSkip};
  for (std::size_t i = 0; i < soa.size(); ++i) {
    EXPECT_EQ(cls[i], static_cast<std::uint8_t>(expected[i])) << "server " << i;
  }
  EXPECT_EQ(u[0], 0.5);
  EXPECT_EQ(u[1], 0.95);
  EXPECT_EQ(u[4], 1.0);  // upper clamp
}
