// Unit tests for ecocloud::util — RNG, math, CSV, strings, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ecocloud/util/csv.hpp"
#include "ecocloud/util/math.hpp"
#include "ecocloud/util/rng.hpp"
#include "ecocloud/util/string_util.hpp"
#include "ecocloud/util/thread_pool.hpp"
#include "ecocloud/util/validation.hpp"

namespace util = ecocloud::util;

// ---------------------------------------------------------------- validation

TEST(Validation, RequireThrowsInvalidArgument) {
  EXPECT_NO_THROW(util::require(true, "ok"));
  EXPECT_THROW(util::require(false, "bad"), std::invalid_argument);
}

TEST(Validation, EnsureThrowsLogicError) {
  EXPECT_NO_THROW(util::ensure(true, "ok"));
  EXPECT_THROW(util::ensure(false, "bug"), std::logic_error);
}

// ----------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  util::Rng parent(7);
  util::Rng c1 = parent.split(1);
  util::Rng c2 = parent.split(2);
  util::Rng c1again = parent.split(1);
  EXPECT_EQ(c1(), c1again());
  EXPECT_NE(c1(), c2());
}

TEST(Rng, UniformInUnitInterval) {
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  util::Rng rng(5);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  util::Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  util::Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
  EXPECT_THROW(rng.uniform_int(0), std::invalid_argument);
}

TEST(Rng, BernoulliEdgeCases) {
  util::Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesProbability) {
  util::Rng rng(19);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  util::Rng rng(23);
  const double rate = 0.5;
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(rate);
  EXPECT_NEAR(acc / n, 1.0 / rate, 0.05);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatch) {
  util::Rng rng(29);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, DiscreteSamplesProportionallyToWeights) {
  util::Rng rng(31);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, DiscreteSkipsZeroWeights) {
  util::Rng rng(37);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.discrete(weights), 1u);
  }
}

TEST(Rng, DiscreteRejectsBadInput) {
  util::Rng rng(41);
  EXPECT_THROW(rng.discrete({}), std::invalid_argument);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.discrete({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, PermutationIsAPermutation) {
  util::Rng rng(43);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, IndexWithinBounds) {
  util::Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

// ---------------------------------------------------------------------- math

TEST(Math, Clamp01) {
  EXPECT_DOUBLE_EQ(util::clamp01(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(util::clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(util::clamp01(1.5), 1.0);
}

TEST(Math, Lerp) {
  EXPECT_DOUBLE_EQ(util::lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(util::lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(util::lerp(2.0, 4.0, 1.0), 4.0);
}

TEST(Math, AlmostEqual) {
  EXPECT_TRUE(util::almost_equal(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(util::almost_equal(1.0, 1.001));
  EXPECT_TRUE(util::almost_equal(1e9, 1e9 * (1.0 + 1e-10)));
}

TEST(Math, PolyvalHorner) {
  // 1 + 2x + 3x^2 at x = 2 -> 1 + 4 + 12 = 17
  EXPECT_DOUBLE_EQ(util::polyval({1.0, 2.0, 3.0}, 2.0), 17.0);
  EXPECT_DOUBLE_EQ(util::polyval({}, 5.0), 0.0);
}

TEST(Math, TrapzIntegratesLinearExactly) {
  // y = x sampled at 0,1,2,3 with dx=1: integral = 4.5
  EXPECT_DOUBLE_EQ(util::trapz({0.0, 1.0, 2.0, 3.0}, 1.0), 4.5);
  EXPECT_DOUBLE_EQ(util::trapz({5.0}, 1.0), 0.0);
}

TEST(Math, Mean) {
  EXPECT_DOUBLE_EQ(util::mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(util::mean({}), 0.0);
}

// ----------------------------------------------------------------------- csv

TEST(Csv, WriterFormatsRows) {
  std::ostringstream out;
  util::CsvWriter writer(out, 6);
  writer.header({"a", "b"});
  writer.row(std::vector<double>{1.5, 2.25});
  writer.comment("note");
  EXPECT_EQ(out.str(), "a,b\n1.5,2.25\n# note\n");
}

TEST(Csv, IncrementalRows) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.field("x").field(2.0).field(static_cast<long long>(7));
  writer.end_row();
  EXPECT_EQ(out.str(), "x,2,7\n");
}

TEST(Csv, ReadSkipsCommentsAndBlanks) {
  std::istringstream in("# header\n\n1, 2 ,3\n4,5,6\n");
  const auto rows = util::read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (util::CsvRow{"1", "2", "3"}));
  EXPECT_EQ(rows[1], (util::CsvRow{"4", "5", "6"}));
}

TEST(Csv, RoundTripDoublePrecision) {
  std::ostringstream out;
  util::CsvWriter writer(out, 17);
  const double value = 0.12345678901234567;
  writer.row(std::vector<double>{value});
  std::istringstream in(out.str());
  const auto rows = util::read_csv(in);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(util::parse_double(rows[0][0]), value);
}

TEST(Csv, SplitKeepsEmptyFields) {
  const auto fields = util::split_csv_line("a,,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

// ------------------------------------------------------------------- strings

TEST(StringUtil, Trim) {
  EXPECT_EQ(util::trim("  hi  "), "hi");
  EXPECT_EQ(util::trim("\t\n x"), "x");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim("   "), "");
}

TEST(StringUtil, Split) {
  const auto parts = util::split("a:b::c", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, ParseDouble) {
  EXPECT_DOUBLE_EQ(util::parse_double(" 2.5 "), 2.5);
  EXPECT_DOUBLE_EQ(util::parse_double("-1e3"), -1000.0);
  EXPECT_THROW(util::parse_double("abc"), std::invalid_argument);
  EXPECT_THROW(util::parse_double(""), std::invalid_argument);
  EXPECT_THROW(util::parse_double("1.5x"), std::invalid_argument);
}

TEST(StringUtil, ParseInt) {
  EXPECT_EQ(util::parse_int("42"), 42);
  EXPECT_EQ(util::parse_int("-7"), -7);
  EXPECT_THROW(util::parse_int("4.2"), std::invalid_argument);
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(util::starts_with("ecocloud", "eco"));
  EXPECT_FALSE(util::starts_with("eco", "ecocloud"));
}

// --------------------------------------------------------------- thread pool

TEST(ThreadPool, ExecutesSubmittedTasks) {
  util::ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversRange) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  util::ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  util::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsEveryIndexEvenWhenOneThrows) {
  // An early chunk failing must not abandon the others: parallel_for
  // drains every chunk before rethrowing (fn is borrowed by reference, so
  // a still-running chunk after return would be use-after-scope).
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  // Throw from the END of the first chunk: the rest of a throwing chunk is
  // legitimately skipped, but every other chunk must still run to
  // completion before parallel_for rethrows.
  const std::size_t first_chunk_last =
      util::ThreadPool::chunk_bounds(0, 64, pool.size())[0].second - 1;
  EXPECT_THROW(pool.parallel_for(0, 64,
                                 [&](std::size_t i) {
                                   hits[i].fetch_add(1);
                                   if (i == first_chunk_last) {
                                     throw std::runtime_error("x");
                                   }
                                 }),
               std::runtime_error);
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ChunkBoundsAreDeterministicAndCoverRange) {
  // Static chunking: the index->chunk mapping is a pure function of
  // (range, worker count) — never of scheduling.
  const auto a = util::ThreadPool::chunk_bounds(0, 1000, 4);
  const auto b = util::ThreadPool::chunk_bounds(0, 1000, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  // Contiguous cover of [0, 1000), at most workers*4 chunks.
  EXPECT_LE(a.size(), 16u);
  std::size_t expect_lo = 0;
  for (const auto& [lo, hi] : a) {
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LT(lo, hi);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 1000u);
}

TEST(ThreadPool, ChunkBoundsEdgeCases) {
  EXPECT_TRUE(util::ThreadPool::chunk_bounds(5, 5, 4).empty());
  // Fewer items than chunk slots: one chunk per item.
  const auto tiny = util::ThreadPool::chunk_bounds(10, 13, 8);
  ASSERT_EQ(tiny.size(), 3u);
  EXPECT_EQ(tiny[0], (std::pair<std::size_t, std::size_t>{10, 11}));
  EXPECT_EQ(tiny[2], (std::pair<std::size_t, std::size_t>{12, 13}));
}

TEST(ThreadPool, ManyTasksComplete) {
  util::ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(Csv, CommentWhileRowOpenIsAnError) {
  std::ostringstream out;
  util::CsvWriter writer(out);
  writer.field("a");
  EXPECT_THROW(writer.comment("oops"), std::logic_error);
  writer.end_row();
  EXPECT_NO_THROW(writer.comment("fine"));
}

TEST(Csv, PrecisionValidation) {
  std::ostringstream out;
  EXPECT_THROW(util::CsvWriter(out, 0), std::invalid_argument);
  EXPECT_THROW(util::CsvWriter(out, 18), std::invalid_argument);
}

TEST(Rng, SplitmixIsDeterministic) {
  std::uint64_t a = 5, b = 5;
  EXPECT_EQ(util::splitmix64(a), util::splitmix64(b));
  EXPECT_EQ(a, b);  // state advanced identically
}

TEST(ThreadPool, StopDrainsQueuedWorkBeforeJoining) {
  // More tasks than workers, each slow enough that most are still queued
  // when stop() begins: shutdown must run every queued task, not drop it.
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      (void)pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    pool.stop();
    EXPECT_EQ(ran.load(), 64);  // stop() returned => everything ran
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    util::ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // destructor calls stop()
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  util::ThreadPool pool(2);
  pool.stop();
  EXPECT_TRUE(pool.stopping());
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, StopIsIdempotentAndSafeFromManyThreads) {
  util::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    (void)pool.submit([&ran] { ran.fetch_add(1); });
  }
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&pool] { pool.stop(); });
  }
  for (auto& t : stoppers) t.join();
  // Every stop() caller returned only after the drain + join completed.
  EXPECT_EQ(ran.load(), 16);
  pool.stop();  // and once more, for good measure
}
