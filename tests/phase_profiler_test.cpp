// Tests for the phase profiler: stride sampling math, nesting/folded
// paths, disabled-mode no-op, the raw add() entry point, and the export
// facade that mirrors the accounting into the metric registry.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ecocloud/obs/exporters.hpp"
#include "ecocloud/obs/metric_registry.hpp"
#include "ecocloud/obs/profiler.hpp"
#include "ecocloud/util/phase_profiler.hpp"

using namespace ecocloud;
using util::Phase;
using util::PhaseDomain;
using util::PhaseProfiler;
using util::ScopedPhase;

namespace {

/// Enter (and immediately exit) a phase scope N times on the current
/// domain.
void pulse(Phase phase, int n) {
  for (int i = 0; i < n; ++i) {
    ScopedPhase scope(phase);
  }
}

}  // namespace

TEST(PhaseProfiler, DisabledModeTouchesNothing) {
  PhaseDomain domain(/*hot_stride=*/1);
  // No domain installed: scopes must not attribute anywhere.
  util::DomainScope off(nullptr);
  pulse(Phase::kCalendarOps, 100);
  pulse(Phase::kTraceAdvance, 100);
  for (std::size_t p = 0; p < util::kNumPhases; ++p) {
    const auto& st = domain.stats(static_cast<Phase>(p));
    EXPECT_EQ(st.calls, 0u);
    EXPECT_EQ(st.timed_calls, 0u);
    EXPECT_EQ(st.timed_ns, 0u);
  }
  EXPECT_TRUE(domain.folded().empty());
}

TEST(PhaseProfiler, HotStrideTimesFirstThenEveryNth) {
  PhaseDomain domain(/*hot_stride=*/4);
  util::DomainScope install(&domain);
  // Calls 1, 5, 9, 13 run the clock: first call, then every 4th.
  pulse(Phase::kMonitorSweep, 13);
  const auto& st = domain.stats(Phase::kMonitorSweep);
  EXPECT_EQ(st.timed_calls, 4u);
  // Calls are attributed in bulk when a window closes; call 13 closed the
  // third full window, so the count is exact here.
  EXPECT_EQ(st.calls, 13u);
  EXPECT_GT(st.timed_ns, 0u);
}

TEST(PhaseProfiler, InProgressWindowNotYetCounted) {
  PhaseDomain domain(/*hot_stride=*/4);
  util::DomainScope install(&domain);
  pulse(Phase::kMonitorSweep, 15);  // calls 14 and 15 sit in an open window
  const auto& st = domain.stats(Phase::kMonitorSweep);
  EXPECT_EQ(st.timed_calls, 4u);
  EXPECT_EQ(st.calls, 13u);
}

TEST(PhaseProfiler, CoolPhasesAlwaysTimed) {
  PhaseDomain domain(/*hot_stride=*/64);
  util::DomainScope install(&domain);
  pulse(Phase::kTraceAdvance, 10);
  pulse(Phase::kCheckpointWrite, 3);
  EXPECT_EQ(domain.stats(Phase::kTraceAdvance).timed_calls, 10u);
  EXPECT_EQ(domain.stats(Phase::kTraceAdvance).calls, 10u);
  EXPECT_EQ(domain.stats(Phase::kCheckpointWrite).timed_calls, 3u);
}

TEST(PhaseProfiler, EstimatedNsScalesByStride) {
  util::PhaseStats st;
  st.calls = 1000;
  st.timed_calls = 10;
  st.timed_ns = 500;
  EXPECT_DOUBLE_EQ(st.estimated_ns(), 50000.0);
  util::PhaseStats empty;
  EXPECT_DOUBLE_EQ(empty.estimated_ns(), 0.0);
}

TEST(PhaseProfiler, NestedScopesRecordFoldedPaths) {
  PhaseDomain domain(/*hot_stride=*/1);  // every call timed: full paths
  util::DomainScope install(&domain);
  {
    ScopedPhase outer(Phase::kCalendarOps);
    {
      ScopedPhase mid(Phase::kMonitorSweep);
      ScopedPhase inner(Phase::kInviteSampling);
    }
  }
  // Path nibbles pack (phase + 1), innermost in the low nibble.
  const std::uint64_t calendar = 0x1;
  const std::uint64_t monitor = (0x1 << 4) | 0x2;
  const std::uint64_t invite = (0x1 << 8) | (0x2 << 4) | 0x3;
  ASSERT_TRUE(domain.folded().count(calendar));
  ASSERT_TRUE(domain.folded().count(monitor));
  ASSERT_TRUE(domain.folded().count(invite));
  EXPECT_EQ(domain.folded().at(invite).timed_calls, 1u);
}

TEST(PhaseProfiler, ReentrantSamePhaseNests) {
  PhaseDomain domain(/*hot_stride=*/1);
  util::DomainScope install(&domain);
  {
    ScopedPhase outer(Phase::kCalendarOps);
    ScopedPhase inner(Phase::kCalendarOps);  // re-entrant event execution
  }
  EXPECT_EQ(domain.stats(Phase::kCalendarOps).timed_calls, 2u);
  const std::uint64_t nested = (0x1 << 4) | 0x1;
  ASSERT_TRUE(domain.folded().count(nested));
  EXPECT_EQ(domain.folded().at(nested).timed_calls, 1u);
}

TEST(PhaseProfiler, AddAttributesExternallyMeasuredTime) {
  PhaseDomain domain;
  domain.add(Phase::kBarrierWait, 2'000'000);  // 2 ms of measured lag
  const auto& st = domain.stats(Phase::kBarrierWait);
  EXPECT_EQ(st.calls, 1u);
  EXPECT_EQ(st.timed_calls, 1u);
  EXPECT_EQ(st.timed_ns, 2'000'000u);
  // Lands in the histogram bucket covering 2 ms (bounds ... 1e-3, 5e-3 ...).
  const auto& bounds = util::phase_histogram_bounds_s();
  const auto& buckets = domain.duration_buckets(Phase::kBarrierWait);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    total += buckets[i];
    if (buckets[i] == 1) {
      ASSERT_LT(i, bounds.size());
      EXPECT_GE(bounds[i], 2e-3);
    }
  }
  EXPECT_EQ(total, 1u);
}

TEST(PhaseProfiler, DomainScopeRestoresPrevious) {
  PhaseDomain a;
  PhaseDomain b;
  util::DomainScope outer(&a);
  EXPECT_EQ(util::current_domain(), &a);
  {
    util::DomainScope inner(&b);
    EXPECT_EQ(util::current_domain(), &b);
  }
  EXPECT_EQ(util::current_domain(), &a);
}

TEST(PhaseProfiler, WriteFoldedEmitsFlamegraphLines) {
  PhaseProfiler profiler(/*num_domains=*/1, /*hot_stride=*/1);
  {
    util::DomainScope install(&profiler.domain(0));
    for (int i = 0; i < 50; ++i) {
      ScopedPhase outer(Phase::kCalendarOps);
      ScopedPhase inner(Phase::kMonitorSweep);
      // Burn enough time that the folded micros round above zero.
      volatile double sink = 0.0;
      for (int j = 0; j < 2000; ++j) sink = sink + static_cast<double>(j);
    }
  }
  std::ostringstream out;
  profiler.write_folded(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("main;calendar_ops;monitor_sweep "), std::string::npos);
  // Every line is "path <integer>".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
  }
}

TEST(PhaseProfiler, OverheadModelIsFiniteAndSmall) {
  PhaseProfiler profiler;
  {
    util::DomainScope install(&profiler.domain(0));
    pulse(Phase::kCalendarOps, 10000);
  }
  const double seconds = profiler.overhead_seconds();
  EXPECT_GE(seconds, 0.0);
  // 10k untimed-dominated scopes cost microseconds, not milliseconds.
  EXPECT_LT(seconds, 0.01);
}

TEST(PhaseProfiler, MultiDomainTotalsSum) {
  PhaseProfiler profiler(/*num_domains=*/3, /*hot_stride=*/1);
  profiler.set_domain_name(0, "shard0");
  profiler.set_domain_name(2, "coordinator");
  for (std::size_t d = 0; d < 3; ++d) {
    util::DomainScope install(&profiler.domain(d));
    pulse(Phase::kHandoff, 2);
  }
  EXPECT_EQ(profiler.total(Phase::kHandoff).timed_calls, 6u);
  EXPECT_EQ(profiler.domain_name(0), "shard0");
  EXPECT_EQ(profiler.domain_name(1), "domain1");
  EXPECT_EQ(profiler.domain_name(2), "coordinator");
}

// ------------------------------------------------------- obs::Profiler

TEST(ObsProfiler, PublishMirrorsIntoRegistry) {
  PhaseProfiler core(/*num_domains=*/1, /*hot_stride=*/1);
  obs::MetricRegistry registry;
  obs::Profiler profiler(core, registry);
  {
    util::DomainScope install(&core.domain(0));
    pulse(Phase::kMonitorSweep, 7);
  }
  profiler.publish(/*run_wall_seconds=*/10.0);

  std::ostringstream out;
  obs::write_prometheus(registry, out);
  const std::string text = out.str();
  EXPECT_NE(
      text.find(
          "ecocloud_profile_phase_calls_total{phase=\"monitor_sweep\"} 7"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("ecocloud_profile_phase_duration_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(text.find("ecocloud_profile_overhead_ratio"), std::string::npos);
}

TEST(ObsProfiler, MultiDomainSeriesCarryDomainLabel) {
  PhaseProfiler core(/*num_domains=*/2, /*hot_stride=*/1);
  core.set_domain_name(0, "shard0");
  core.set_domain_name(1, "coordinator");
  obs::MetricRegistry registry;
  obs::Profiler profiler(core, registry);
  {
    util::DomainScope install(&core.domain(1));
    pulse(Phase::kCheckpointWrite, 1);
  }
  profiler.publish(1.0);
  std::ostringstream out;
  obs::write_prometheus(registry, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("domain=\"coordinator\""), std::string::npos) << text;
  EXPECT_NE(text.find("domain=\"shard0\""), std::string::npos) << text;
}

TEST(ObsProfiler, RepeatedPublishReportsLatestNotAccumulated) {
  PhaseProfiler core(/*num_domains=*/1, /*hot_stride=*/1);
  obs::MetricRegistry registry;
  obs::Profiler profiler(core, registry);
  {
    util::DomainScope install(&core.domain(0));
    pulse(Phase::kTraceAdvance, 4);
  }
  profiler.publish(1.0);
  profiler.publish(2.0);  // histograms are reset_to-mirrored, not re-observed
  std::ostringstream out;
  obs::write_prometheus(registry, out);
  const std::string text = out.str();
  EXPECT_NE(
      text.find(
          "ecocloud_profile_phase_duration_seconds_count"
          "{phase=\"trace_advance\"} 4"),
      std::string::npos)
      << text;
}
