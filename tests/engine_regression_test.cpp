// Golden-stream regression pins for the engine hot-path rework.
//
// These tests freeze the exact event streams the engine produced BEFORE the
// structure-of-arrays / sampling / streaming-trace rework (the hashes below
// were captured from that build) and require every later build to reproduce
// them byte for byte under the default (compatibility) sampler. Unlike the
// run-vs-run pins in obs_test/faults_test, these survive a rebuild of the
// engine internals: they compare against constants, not against a second run
// of the same binary.

#include <cstdint>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/metrics/event_log_binary.hpp"
#include "ecocloud/scenario/scenario.hpp"

namespace {

using namespace ecocloud;

/// FNV-1a 64-bit over the bytes of \p s. Stable, dependency-free, and good
/// enough to pin a CSV byte stream.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct StreamFingerprint {
  std::uint64_t hash = 0;
  std::size_t bytes = 0;
  std::size_t events = 0;
};

StreamFingerprint run_and_fingerprint(scenario::DailyConfig config) {
  scenario::DailyScenario scenario(std::move(config));
  metrics::EventLog log;
  log.attach(*scenario.ecocloud());
  scenario.run();
  std::ostringstream csv;
  log.write_csv(csv);
  const std::string text = csv.str();

  // Every pinned stream also validates the binary round trip: the compact
  // format converted back through eventlog2csv's code path must reproduce
  // the legacy CSV byte for byte.
  std::ostringstream binary;
  metrics::write_binary_events(binary, log.events());
  std::istringstream binary_in(binary.str());
  std::ostringstream converted;
  const metrics::BinaryReadResult round_trip =
      metrics::convert_binary_events_to_csv(binary_in, converted);
  EXPECT_FALSE(round_trip.truncated_tail);
  EXPECT_EQ(converted.str(), text)
      << "binary event log did not convert back to the legacy CSV bytes";

  return StreamFingerprint{fnv1a(text), text.size(), log.events().size()};
}

TEST(EngineRegression, PaperScaleEventStreamPinned) {
  scenario::DailyConfig config;  // 400 servers, 6,000 VMs, 48 h
  config.warmup_s = 6.0 * sim::kHour;
  const StreamFingerprint fp = run_and_fingerprint(config);
  EXPECT_EQ(fp.hash, 1180743103847393382ULL)
      << "paper-scale event CSV diverged (bytes=" << fp.bytes
      << " events=" << fp.events << " hash=" << fp.hash << ")";
  EXPECT_EQ(fp.bytes, 746824u);
  EXPECT_EQ(fp.events, 22196u);
}

// The streaming cursor bank must reproduce the materialized run exactly:
// same hash, same bytes, same events as the pin above. This is the
// strongest form of the StreamingTraces bit-compatibility contract.
TEST(EngineRegression, PaperScaleStreamingTracesMatchesMaterializedPin) {
  scenario::DailyConfig config;
  config.warmup_s = 6.0 * sim::kHour;
  config.streaming_traces = true;
  const StreamFingerprint fp = run_and_fingerprint(config);
  EXPECT_EQ(fp.hash, 1180743103847393382ULL)
      << "streaming-mode event CSV diverged from the materialized pin "
      << "(bytes=" << fp.bytes << " events=" << fp.events << ")";
  EXPECT_EQ(fp.bytes, 746824u);
  EXPECT_EQ(fp.events, 22196u);
}

TEST(EngineRegression, ScaleUpEventStreamPinned) {
  // The scaleup_4000 fleet of BENCH_engine.json on a shortened horizon:
  // same construction (10x fleet, 10x VMs), 6 h of simulated time so the
  // pin stays cheap enough for every ctest run.
  scenario::DailyConfig config;
  config.fleet.num_servers = 4000;
  config.num_vms = 60000;
  config.horizon_s = 6.0 * sim::kHour;
  config.warmup_s = 1.0 * sim::kHour;
  const StreamFingerprint fp = run_and_fingerprint(config);
  EXPECT_EQ(fp.hash, 8250774598759218787ULL)
      << "scaleup event CSV diverged (bytes=" << fp.bytes
      << " events=" << fp.events << " hash=" << fp.hash << ")";
  EXPECT_EQ(fp.bytes, 2629411u);
  EXPECT_EQ(fp.events, 86001u);
}

}  // namespace
