// Planet-tier smoke: a 100,000-server fleet on a very short horizon,
// exercising the whole planet-scale configuration at once — SoA fleet
// state at 10^5 servers, the O(1) fast sampler with bounded invitation
// groups, the batched monitor kernel, and the streaming trace cursor
// banks (single-calendar AND per-shard) — in runs cheap enough for every
// ctest invocation. CI's ASan/UBSan matrix leg runs these under the
// sanitizers, which is the point: the planet bench rows only ever run in
// Release, so this test is where address errors in the large-fleet paths
// would surface.

#include <gtest/gtest.h>

#include "ecocloud/par/sharded_runner.hpp"
#include "ecocloud/scenario/scenario.hpp"

namespace {

using namespace ecocloud;

scenario::DailyConfig planet_smoke_config() {
  scenario::DailyConfig config;
  config.fleet.num_servers = 100000;
  config.num_vms = 200000;
  config.warmup_s = 0.0;
  config.horizon_s = 600.0;  // 10 sim-minutes: two trace steps, one ramp
  config.params.fast_sampler = true;
  config.params.invite_group_size = 64;
  config.streaming_traces = true;
  return config;
}

TEST(PlanetSmoke, HundredThousandServerShortHorizonRunsClean) {
  scenario::DailyScenario daily(planet_smoke_config());
  daily.run();

  // The fleet actually absorbed the population: every VM is somewhere
  // (deploy retries notwithstanding, the short horizon is enough for the
  // initial placement wave), energy accumulated, and the invariants the
  // auditor checks hold.
  const auto& d = daily.datacenter();
  EXPECT_GT(d.energy_joules(), 0.0);
  EXPECT_GT(d.active_server_count(), 0u);
  EXPECT_GT(d.placed_vm_count(), 0u);
  const auto violations = d.audit_invariants(1e-6);
  EXPECT_TRUE(violations.empty())
      << "first violation: " << (violations.empty() ? "" : violations[0]);
}

// The sharded planet path on per-shard streaming banks (DESIGN.md §17):
// partitioned bank generation, per-shard cursor advance, and barrier
// adoption all at 10^5 servers, under whatever sanitizer the build
// carries. The banks must actually be in use — streaming_traces is
// honored, never silently downgraded to a materialized TraceSet.
TEST(PlanetSmoke, ShardedStreamingBanksRunClean) {
  ecocloud::par::ShardedDailyRun run(planet_smoke_config(),
                                     {.shards = 8, .threads = 4});
  for (std::size_t k = 0; k < run.num_shards(); ++k) {
    ASSERT_NE(run.shard(k).streaming_bank(), nullptr) << "shard " << k;
  }
  run.run();
  EXPECT_GT(run.stats().energy_joules, 0.0);
  EXPECT_GT(run.stats().barriers, 0u);
  for (std::size_t k = 0; k < run.num_shards(); ++k) {
    const auto violations = run.shard(k).datacenter().audit_invariants(1e-6);
    EXPECT_TRUE(violations.empty())
        << "shard " << k << " first violation: "
        << (violations.empty() ? "" : violations[0]);
  }
}

// Determinism holds at this scale too: same config, same stream.
TEST(PlanetSmoke, RepeatRunIsBitIdentical) {
  scenario::DailyScenario a(planet_smoke_config());
  scenario::DailyScenario b(planet_smoke_config());
  a.run();
  b.run();
  EXPECT_EQ(a.datacenter().energy_joules(), b.datacenter().energy_joules());
  EXPECT_EQ(a.datacenter().total_migrations(),
            b.datacenter().total_migrations());
  EXPECT_EQ(a.simulator().executed_events(), b.simulator().executed_events());
}

}  // namespace
