// End-to-end integration tests: scaled-down versions of the paper's two
// experiments, checking the qualitative claims hold and runs are
// deterministic and internally consistent.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "ecocloud/metrics/episode_summary.hpp"
#include "ecocloud/scenario/scenario.hpp"

using namespace ecocloud;

namespace {

scenario::DailyConfig small_daily(std::uint64_t seed = 101) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 60;
  config.num_vms = 900;
  config.horizon_s = 12.0 * sim::kHour;
  config.seed = seed;
  return config;
}

scenario::ConsolidationConfig small_consolidation(std::uint64_t seed = 202) {
  scenario::ConsolidationConfig config;
  config.num_servers = 30;
  config.initial_vms = 450;
  config.horizon_s = 8.0 * sim::kHour;
  config.seed = seed;
  return config;
}

}  // namespace

TEST(DailyIntegration, ConsolidatesAndTracksLoad) {
  scenario::DailyScenario daily(small_daily());
  daily.run();
  const auto& samples = daily.collector().samples();
  ASSERT_FALSE(samples.empty());

  // All VMs placed, none lost.
  EXPECT_EQ(daily.datacenter().placed_vm_count(), 900u);

  // A meaningful number of servers stays hibernated (consolidation).
  const auto& last = samples.back();
  EXPECT_LT(last.active_servers, 60u);
  EXPECT_GT(last.active_servers, 5u);

  // Active servers run well above the overall load level: consolidation
  // means mean active utilization exceeds total-load / total-servers by far.
  const auto utils = daily.datacenter().active_utilizations();
  double mean_u = 0.0;
  for (double u : utils) mean_u += u;
  mean_u /= static_cast<double>(utils.size());
  EXPECT_GT(mean_u, 2.0 * last.overall_load);
}

TEST(DailyIntegration, QosRemainsHigh) {
  scenario::DailyScenario daily(small_daily());
  daily.run();
  const auto& d = daily.datacenter();
  // Overload VM-time stays a small fraction (paper: < 0.03% in steady
  // state; allow slack for the bootstrap transient in this small run).
  const double overload_pct = 100.0 * d.overload_vm_seconds() / d.vm_seconds();
  EXPECT_LT(overload_pct, 1.0);
  const auto summary = metrics::summarize_episodes(d.overload_episodes());
  if (summary.count > 10) {
    EXPECT_GT(summary.fraction_under_30s, 0.8);
  }
}

TEST(DailyIntegration, DeterministicForFixedSeed) {
  scenario::DailyScenario a(small_daily(7));
  scenario::DailyScenario b(small_daily(7));
  a.run();
  b.run();
  EXPECT_EQ(a.datacenter().energy_joules(), b.datacenter().energy_joules());
  EXPECT_EQ(a.ecocloud()->low_migrations(), b.ecocloud()->low_migrations());
  EXPECT_EQ(a.ecocloud()->high_migrations(), b.ecocloud()->high_migrations());
  EXPECT_EQ(a.datacenter().total_hibernations(), b.datacenter().total_hibernations());
}

TEST(DailyIntegration, SeedsChangeOutcomes) {
  scenario::DailyScenario a(small_daily(7));
  scenario::DailyScenario b(small_daily(8));
  a.run();
  b.run();
  EXPECT_NE(a.datacenter().energy_joules(), b.datacenter().energy_joules());
}

TEST(DailyIntegration, EnergyWithinPhysicalBounds) {
  scenario::DailyScenario daily(small_daily());
  daily.run();
  const auto& d = daily.datacenter();
  double peak_total = 0.0;
  for (const auto& server : d.servers()) {
    peak_total += d.power_model().peak_w(server.num_cores());
  }
  const double horizon = 12.0 * sim::kHour;
  EXPECT_GT(d.energy_joules(), 0.0);
  EXPECT_LT(d.energy_joules(), peak_total * horizon);
}

TEST(DailyIntegration, CentralizedBaselineRunsSameWorkload) {
  scenario::DailyScenario eco(small_daily(33), scenario::Algorithm::kEcoCloud);
  scenario::DailyScenario central(small_daily(33), scenario::Algorithm::kCentralized);
  eco.run();
  central.run();
  EXPECT_EQ(central.datacenter().placed_vm_count(), 900u);
  // Both consolidate: energies within 2x of each other (paper: ecoCloud is
  // "comparable to one of the best centralized algorithms").
  const double ratio =
      eco.datacenter().energy_joules() / central.datacenter().energy_joules();
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
  // ...and the centralized policy needs far more migrations.
  EXPECT_GT(central.datacenter().total_migrations(),
            eco.datacenter().total_migrations());
}

TEST(ConsolidationIntegration, ReachesBimodalSteadyState) {
  scenario::ConsolidationScenario cons(small_consolidation());
  cons.run();
  const auto& d = cons.datacenter();
  // Some servers hibernated, the rest well-utilized (paper Fig. 12:
  // "all servers either hibernated or working nearly at Ta").
  EXPECT_LT(d.active_server_count(), 30u);
  EXPECT_GT(d.active_server_count(), 2u);
  auto utils = d.active_utilizations();
  const double mean_u =
      std::accumulate(utils.begin(), utils.end(), 0.0) / utils.size();
  // At this small scale a few servers are always mid-drain, dragging the
  // mean; the top of the distribution must still sit near Ta.
  EXPECT_GT(mean_u, 0.35);
  std::sort(utils.begin(), utils.end());
  EXPECT_GT(utils[utils.size() - utils.size() / 4 - 1], 0.6);  // p75 near Ta
}

TEST(ConsolidationIntegration, NoMigrationsHappen) {
  scenario::ConsolidationScenario cons(small_consolidation());
  cons.run();
  EXPECT_EQ(cons.datacenter().total_migrations(), 0u);
  EXPECT_EQ(cons.controller().low_migrations(), 0u);
  EXPECT_EQ(cons.controller().high_migrations(), 0u);
}

TEST(ConsolidationIntegration, PopulationStaysNearTarget) {
  scenario::ConsolidationScenario cons(small_consolidation());
  cons.run();
  // lambda = target * nu * g(t): the stationary population tracks the
  // target within the diurnal swing.
  const double pop = static_cast<double>(cons.open_system().population());
  EXPECT_GT(pop, 450.0 * 0.5);
  EXPECT_LT(pop, 450.0 * 1.6);
  EXPECT_GT(cons.open_system().total_arrivals(), 100u);
  EXPECT_GT(cons.open_system().total_departures(), 100u);
}

TEST(ConsolidationIntegration, RateEstimatorSeesTraffic) {
  scenario::ConsolidationScenario cons(small_consolidation());
  cons.run();
  const auto& rates = cons.rates();
  EXPECT_GT(rates.lambda_max(), 0.0);
  // Mid-run lambda estimate within a factor ~2.5 of the configured rate
  // (it is a windowed count of a Poisson process).
  const double t_mid = 4.0 * sim::kHour;
  const double configured = cons.lambda(t_mid);
  const double estimated = rates.lambda(t_mid);
  EXPECT_GT(estimated, configured / 2.5);
  EXPECT_LT(estimated, configured * 2.5);
}

TEST(ConsolidationIntegration, UtilizationNeverAboveTaAtDecisionTime) {
  // Without migrations and with constant-ish VM demands, assignment should
  // keep decision-time utilization under Ta; demand jitter may push hosts
  // somewhat above, but never absurdly so.
  scenario::ConsolidationScenario cons(small_consolidation());
  cons.run();
  for (const auto& server : cons.datacenter().servers()) {
    if (server.active()) {
      EXPECT_LT(server.demand_ratio(), 1.15);
    }
  }
}
