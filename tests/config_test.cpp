// Tests for key=value parsing, experiment-config loading, and the
// PlanetLab trace-directory import/export.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ecocloud/scenario/config_io.hpp"
#include "ecocloud/trace/planetlab_io.hpp"
#include "ecocloud/util/key_value.hpp"

using namespace ecocloud;

// ----------------------------------------------------------------- key=value

TEST(KeyValue, ParsesAssignmentsCommentsBlanks) {
  const auto kv = util::KeyValueConfig::parse_string(
      "# header comment\n"
      "alpha = 0.25\n"
      "\n"
      "name = hello ; trailing comment\n"
      "count=42\n");
  EXPECT_EQ(kv.size(), 3u);
  EXPECT_DOUBLE_EQ(kv.get_double("alpha", 0.0), 0.25);
  EXPECT_EQ(kv.get_string("name", ""), "hello");
  EXPECT_EQ(kv.get_int("count", 0), 42);
}

TEST(KeyValue, FallbacksWhenAbsent) {
  const auto kv = util::KeyValueConfig::parse_string("");
  EXPECT_DOUBLE_EQ(kv.get_double("x", 1.5), 1.5);
  EXPECT_EQ(kv.get_int("y", 7), 7);
  EXPECT_TRUE(kv.get_bool("z", true));
  EXPECT_EQ(kv.get_string("s", "d"), "d");
}

TEST(KeyValue, BooleanSpellings) {
  const auto kv = util::KeyValueConfig::parse_string(
      "a = true\nb = 0\nc = yes\nd = off\n");
  EXPECT_TRUE(kv.get_bool("a", false));
  EXPECT_FALSE(kv.get_bool("b", true));
  EXPECT_TRUE(kv.get_bool("c", false));
  EXPECT_FALSE(kv.get_bool("d", true));
}

TEST(KeyValue, RejectsMalformedInput) {
  EXPECT_THROW(util::KeyValueConfig::parse_string("no equals sign\n"),
               std::invalid_argument);
  EXPECT_THROW(util::KeyValueConfig::parse_string("= value\n"),
               std::invalid_argument);
  EXPECT_THROW(util::KeyValueConfig::parse_string("a = 1\na = 2\n"),
               std::invalid_argument);
  const auto kv = util::KeyValueConfig::parse_string("x = abc\n");
  EXPECT_THROW(kv.get_double("x", 0.0), std::invalid_argument);
  EXPECT_THROW(kv.get_bool("x", false), std::invalid_argument);
}

TEST(KeyValue, TracksUnusedKeys) {
  const auto kv = util::KeyValueConfig::parse_string("a = 1\nb = 2\n");
  (void)kv.get_int("a", 0);
  const auto unused = kv.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "b");
  EXPECT_THROW(kv.require_all_used(), std::invalid_argument);
  (void)kv.get_int("b", 0);
  EXPECT_NO_THROW(kv.require_all_used());
}

// ----------------------------------------------------------------- config IO

TEST(ConfigIo, DailyDefaultsMatchPaper) {
  std::istringstream empty;
  const auto config = scenario::load_daily_config(empty);
  EXPECT_EQ(config.fleet.num_servers, 400u);
  EXPECT_EQ(config.num_vms, 6000u);
  EXPECT_DOUBLE_EQ(config.params.ta, 0.90);
  EXPECT_DOUBLE_EQ(config.params.p, 3.0);
  EXPECT_DOUBLE_EQ(config.params.tl, 0.50);
  EXPECT_DOUBLE_EQ(config.params.th, 0.95);
  EXPECT_DOUBLE_EQ(config.params.alpha, 0.25);
  EXPECT_DOUBLE_EQ(config.params.beta, 0.25);
  EXPECT_DOUBLE_EQ(config.horizon_s, 48.0 * sim::kHour);
}

TEST(ConfigIo, DailyOverrides) {
  std::istringstream in(
      "servers = 80\n"
      "vms = 1200\n"
      "horizon_hours = 12\n"
      "warmup_hours = 2\n"
      "p = 5\n"
      "tl = 0.4\n"
      "core_mix = 4,8\n"
      "invite_group_size = 32\n"
      "enable_migrations = false\n"
      "diurnal_amplitude = 0.1\n");
  const auto config = scenario::load_daily_config(in);
  EXPECT_EQ(config.fleet.num_servers, 80u);
  EXPECT_EQ(config.num_vms, 1200u);
  EXPECT_DOUBLE_EQ(config.horizon_s, 12.0 * sim::kHour);
  EXPECT_DOUBLE_EQ(config.warmup_s, 2.0 * sim::kHour);
  EXPECT_DOUBLE_EQ(config.params.p, 5.0);
  EXPECT_DOUBLE_EQ(config.params.tl, 0.4);
  EXPECT_EQ(config.fleet.core_mix, (std::vector<unsigned>{4u, 8u}));
  EXPECT_EQ(config.params.invite_group_size, 32u);
  EXPECT_FALSE(config.params.enable_migrations);
  EXPECT_DOUBLE_EQ(config.workload.diurnal.amplitude(), 0.1);
}

TEST(ConfigIo, DailyRejectsUnknownKeys) {
  std::istringstream in("serverz = 80\n");
  EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
}

TEST(ConfigIo, DailyRejectsInvalidParameters) {
  std::istringstream in("th = 0.5\n");  // Th must exceed Ta = 0.9
  EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
}

TEST(ConfigIo, ConsolidationDefaultsAndOverrides) {
  std::istringstream empty;
  const auto defaults = scenario::load_consolidation_config(empty);
  EXPECT_EQ(defaults.num_servers, 100u);
  EXPECT_EQ(defaults.initial_vms, 1500u);
  EXPECT_DOUBLE_EQ(defaults.workload.reference_mhz, 1600.0);

  std::istringstream in(
      "servers = 40\n"
      "initial_vms = 500\n"
      "mean_lifetime_hours = 1\n"
      "metrics_period_s = 600\n");
  const auto config = scenario::load_consolidation_config(in);
  EXPECT_EQ(config.num_servers, 40u);
  EXPECT_EQ(config.initial_vms, 500u);
  EXPECT_DOUBLE_EQ(config.mean_lifetime_s, sim::kHour);
  EXPECT_DOUBLE_EQ(config.sample_period_s, 600.0);
}

// ------------------------------------------------------------- PlanetLab IO

namespace {

std::filesystem::path temp_dir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

TEST(PlanetlabIo, ParseFile) {
  std::istringstream in("12\n34\n\n 56 \n0\n100\n");
  const auto samples = trace::parse_planetlab_file(in);
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_FLOAT_EQ(samples[0], 12.0f);
  EXPECT_FLOAT_EQ(samples[2], 56.0f);
  EXPECT_FLOAT_EQ(samples[4], 100.0f);
}

TEST(PlanetlabIo, ParseClampsOutOfRange) {
  std::istringstream in("150\n-5\n");
  const auto samples = trace::parse_planetlab_file(in);
  EXPECT_FLOAT_EQ(samples[0], 100.0f);
  EXPECT_FLOAT_EQ(samples[1], 0.0f);
}

TEST(PlanetlabIo, ParseRejectsGarbage) {
  std::istringstream in("12\nnot-a-number\n");
  EXPECT_THROW(trace::parse_planetlab_file(in), std::invalid_argument);
}

TEST(PlanetlabIo, DirectoryRoundTrip) {
  const auto dir = temp_dir("ecocloud_pl_roundtrip");
  trace::WorkloadModel model;
  util::Rng rng(3);
  const auto original = trace::TraceSet::generate(model, 5, 12, rng);
  trace::write_planetlab_dir(original, dir);

  const auto loaded = trace::read_planetlab_dir(dir, 300.0, 2000.0);
  ASSERT_EQ(loaded.num_vms(), 5u);
  ASSERT_EQ(loaded.num_steps(), 12u);
  for (std::size_t v = 0; v < 5; ++v) {
    for (std::size_t k = 0; k < 12; ++k) {
      EXPECT_NEAR(loaded.percent_at(v, k), original.percent_at(v, k), 1e-3);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(PlanetlabIo, RaggedFilesAreWrapExtended) {
  const auto dir = temp_dir("ecocloud_pl_ragged");
  {
    std::ofstream a(dir / "a");
    a << "10\n20\n30\n40\n";
    std::ofstream b(dir / "b");
    b << "5\n15\n";
  }
  const auto set = trace::read_planetlab_dir(dir);
  EXPECT_EQ(set.num_steps(), 4u);
  // File b wraps: 5, 15, 5, 15.
  EXPECT_FLOAT_EQ(static_cast<float>(set.percent_at(1, 2)), 5.0f);
  EXPECT_FLOAT_EQ(static_cast<float>(set.percent_at(1, 3)), 15.0f);
  std::filesystem::remove_all(dir);
}

TEST(PlanetlabIo, ErrorsOnMissingOrEmptyDir) {
  EXPECT_THROW(trace::read_planetlab_dir("/nonexistent/ecocloud"),
               std::invalid_argument);
  const auto dir = temp_dir("ecocloud_pl_empty");
  EXPECT_THROW(trace::read_planetlab_dir(dir), std::invalid_argument);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ TraceSet::from_series

TEST(TraceSetFromSeries, ComputesAverages) {
  std::vector<std::vector<float>> series{{10.0f, 20.0f, 30.0f},
                                         {0.0f, 0.0f, 60.0f}};
  const auto set = trace::TraceSet::from_series(series, 300.0, 2000.0, 1024.0);
  EXPECT_EQ(set.num_vms(), 2u);
  EXPECT_DOUBLE_EQ(set.average_percent(0), 20.0);
  EXPECT_DOUBLE_EQ(set.average_percent(1), 20.0);
  EXPECT_DOUBLE_EQ(set.ram_mb(0), 1024.0);
  EXPECT_DOUBLE_EQ(set.demand_mhz_at(0, 2), 600.0);
}

TEST(TraceSetFromSeries, RejectsBadInput) {
  EXPECT_THROW(trace::TraceSet::from_series({}, 300.0, 2000.0),
               std::invalid_argument);
  EXPECT_THROW(trace::TraceSet::from_series({{10.0f}, {10.0f, 20.0f}}, 300.0, 2000.0),
               std::invalid_argument);
  EXPECT_THROW(trace::TraceSet::from_series({{150.0f}}, 300.0, 2000.0),
               std::invalid_argument);
}

TEST(ConfigIo, DailyTopologyKeys) {
  std::istringstream in(
      "racks = 8\n"
      "intra_rack_gbps = 25\n"
      "inter_rack_gbps = 10\n");
  const auto config = scenario::load_daily_config(in);
  ASSERT_TRUE(config.topology.has_value());
  EXPECT_EQ(config.topology->num_racks, 8u);
  EXPECT_DOUBLE_EQ(config.topology->intra_rack_gbps, 25.0);
  EXPECT_DOUBLE_EQ(config.topology->inter_rack_gbps, 10.0);
  std::istringstream none("servers = 50\n");
  EXPECT_FALSE(scenario::load_daily_config(none).topology.has_value());
}

// ------------------------------------------------------- sections and faults

TEST(KeyValue, SectionsPrefixKeys) {
  const auto kv = util::KeyValueConfig::parse_string(
      "top = 1\n"
      "[faults]\n"
      "server_mtbf_s = 3600\n"
      "schedule = crash 0-3 60\n"
      "[other] ; comment after a header\n"
      "x = 2\n");
  EXPECT_EQ(kv.get_int("top", 0), 1);
  EXPECT_DOUBLE_EQ(kv.get_double("faults.server_mtbf_s", 0.0), 3600.0);
  EXPECT_EQ(kv.get_string("faults.schedule", ""), "crash 0-3 60");
  EXPECT_EQ(kv.get_int("other.x", 0), 2);
}

TEST(KeyValue, RejectsMalformedSectionHeader) {
  EXPECT_THROW(util::KeyValueConfig::parse_string("[faults\n"),
               std::invalid_argument);
  EXPECT_THROW(util::KeyValueConfig::parse_string("[]\n"),
               std::invalid_argument);
}

TEST(ConfigIo, DailyParsesFaultsSection) {
  std::istringstream in(
      "servers = 40\n"
      "[faults]\n"
      "server_mtbf_s = 7200\n"
      "server_mttr_s = 300\n"
      "migration_abort_prob = 0.05\n"
      "max_invite_rounds = 5\n"
      "redeploy_delay_s = 45\n"
      "schedule = crash 10-20 3600 600, repair 5 7200\n");
  const auto config = scenario::load_daily_config(in);
  EXPECT_TRUE(config.faults.enabled());
  EXPECT_DOUBLE_EQ(config.faults.server_mtbf_s, 7200.0);
  EXPECT_DOUBLE_EQ(config.faults.server_mttr_s, 300.0);
  EXPECT_DOUBLE_EQ(config.faults.migration_abort_prob, 0.05);
  EXPECT_EQ(config.faults.max_invite_rounds, 5u);
  EXPECT_DOUBLE_EQ(config.faults.redeploy_delay_s, 45.0);
  ASSERT_EQ(config.faults.schedule.size(), 2u);
  EXPECT_EQ(config.faults.schedule[0].first, 10u);
  EXPECT_EQ(config.faults.schedule[1].kind,
            faults::ScriptedFault::Kind::kRepair);
}

TEST(ConfigIo, DailyDefaultsDisableFaults) {
  std::istringstream empty;
  const auto config = scenario::load_daily_config(empty);
  EXPECT_FALSE(config.faults.enabled());
}

TEST(ConfigIo, DailyRejectsBadFaultValues) {
  {
    std::istringstream in("[faults]\nmigration_abort_prob = 1.5\n");
    EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
  }
  {
    std::istringstream in("[faults]\nschedule = explode 3 100\n");
    EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
  }
  {
    std::istringstream in("[faults]\nmax_boot_retries = -1\n");
    EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
  }
  {
    // Typo protection extends into the section.
    std::istringstream in("[faults]\nserver_mtfb_s = 100\n");
    EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
  }
}

// ------------------------------------------------------ parameter hardening

TEST(ParamsValidate, RejectsNonFiniteValues) {
  {
    core::EcoCloudParams p;
    p.alpha = std::numeric_limits<double>::infinity();
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    core::EcoCloudParams p;
    p.ta = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    core::EcoCloudParams p;
    p.boot_time_s = -std::numeric_limits<double>::infinity();
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

TEST(ParamsValidate, RejectsOutOfRangeHighDestFactor) {
  core::EcoCloudParams p;
  p.high_dest_factor = 1.2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.high_dest_factor = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ConfigIo, DailyRejectsNegativeInviteGroupSize) {
  std::istringstream in("invite_group_size = -3\n");
  EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
}

// --- Robustness sections + strict parsing diagnostics ------------------------

TEST(ConfigIo, DailyParsesRobustnessSections) {
  std::istringstream in(
      "[checkpoint]\n"
      "out = /tmp/run.ckpt\n"
      "every_s = 1800\n"
      "[audit]\n"
      "every_s = 600\n"
      "action = heal\n"
      "tolerance = 1e-9\n"
      "strict = false\n"
      "[watchdog]\n"
      "stall_s = 120\n");
  const auto config = scenario::load_daily_config(in);
  EXPECT_EQ(config.run.checkpoint_out, "/tmp/run.ckpt");
  EXPECT_DOUBLE_EQ(config.run.checkpoint_every_s, 1800.0);
  EXPECT_DOUBLE_EQ(config.run.audit_every_s, 600.0);
  EXPECT_EQ(config.run.audit_action, "heal");
  EXPECT_DOUBLE_EQ(config.run.audit_tolerance, 1e-9);
  EXPECT_FALSE(config.run.audit_strict);
  EXPECT_DOUBLE_EQ(config.run.watchdog_stall_s, 120.0);
}

TEST(ConfigIo, RobustnessDefaultsAreAllDisabled) {
  std::istringstream daily_in;
  const auto daily = scenario::load_daily_config(daily_in);
  EXPECT_TRUE(daily.run.checkpoint_out.empty());
  EXPECT_DOUBLE_EQ(daily.run.checkpoint_every_s, 0.0);
  EXPECT_DOUBLE_EQ(daily.run.audit_every_s, 0.0);
  EXPECT_EQ(daily.run.audit_action, "log");
  EXPECT_TRUE(daily.run.audit_strict);
  EXPECT_DOUBLE_EQ(daily.run.watchdog_stall_s, 0.0);

  // The consolidation loader relaxes strict VM accounting: departed VMs
  // stay unowned forever in the open system.
  std::istringstream cons_in;
  const auto cons = scenario::load_consolidation_config(cons_in);
  EXPECT_FALSE(cons.run.audit_strict);
}

TEST(ConfigIo, RejectsInvalidRobustnessValues) {
  {
    std::istringstream in("[checkpoint]\nevery_s = 1800\n");  // no out path
    EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
  }
  {
    std::istringstream in("[audit]\naction = explode\n");
    EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
  }
  {
    std::istringstream in("[audit]\ntolerance = -1\n");
    EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
  }
  {
    std::istringstream in("[watchdog]\nstall_s = -5\n");
    EXPECT_THROW(scenario::load_daily_config(in), std::invalid_argument);
  }
}

// Satellite regression: a typo'd key is reported with its name and the
// line it sits on, so multi-section files stay debuggable.
TEST(ConfigIo, UnknownKeyErrorCarriesLineNumber) {
  std::istringstream in(
      "servers = 40\n"
      "\n"
      "# comment\n"
      "[checkpoint]\n"
      "ouut = /tmp/x.ckpt\n");
  try {
    (void)scenario::load_daily_config(in);
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("checkpoint.ouut"), std::string::npos) << what;
    EXPECT_NE(what.find("(line 5)"), std::string::npos) << what;
  }
}
