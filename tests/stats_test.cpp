// Unit tests for ecocloud::stats — Welford, histogram, time series,
// rate windows, quantiles.

#include <gtest/gtest.h>

#include <cmath>

#include "ecocloud/stats/histogram.hpp"
#include "ecocloud/stats/quantile.hpp"
#include "ecocloud/stats/rate_window.hpp"
#include "ecocloud/stats/time_series.hpp"
#include "ecocloud/stats/welford.hpp"
#include "ecocloud/util/rng.hpp"

namespace stats = ecocloud::stats;

// ------------------------------------------------------------------- welford

TEST(Welford, EmptyAccumulator) {
  stats::Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, KnownMoments) {
  stats::Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 4.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, SampleVarianceUsesNMinusOne) {
  stats::Welford w;
  w.add(1.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 1.0);
  EXPECT_DOUBLE_EQ(w.sample_variance(), 2.0);
}

TEST(Welford, MergeEqualsSequential) {
  stats::Welford all, a, b;
  ecocloud::util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmpty) {
  stats::Welford a, empty;
  a.add(5.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  stats::Welford b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Welford, NumericallyStableForLargeOffsets) {
  stats::Welford w;
  for (int i = 0; i < 1000; ++i) w.add(1e9 + (i % 2));
  EXPECT_NEAR(w.variance(), 0.25, 1e-6);
}

// ----------------------------------------------------------------- histogram

TEST(Histogram, BinningAndFrequencies) {
  stats::Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.6, 9.99}) h.add(x);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.frequency(1), 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, UnderOverflow) {
  stats::Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, WeightedAdds) {
  stats::Histogram h(0.0, 1.0, 2);
  h.add(0.25, 3.0);
  h.add(0.75, 1.0);
  EXPECT_DOUBLE_EQ(h.frequency(0), 0.75);
  EXPECT_THROW(h.add(0.5, -1.0), std::invalid_argument);
}

TEST(Histogram, BinGeometry) {
  stats::Histogram h(-10.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_width(), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_left(0), -10.0);
  EXPECT_DOUBLE_EQ(h.bin_center(1), -2.5);
  EXPECT_THROW(h.bin_left(4), std::invalid_argument);
}

TEST(Histogram, FractionWithinInterpolatesPartialBins) {
  stats::Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  // [0, 5) covers exactly half the mass.
  EXPECT_NEAR(h.fraction_within(0.0, 5.0), 0.5, 1e-12);
  // [0, 2.5) covers 2.5 bins worth under uniform interpolation.
  EXPECT_NEAR(h.fraction_within(0.0, 2.5), 0.25, 1e-12);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(stats::Histogram(1.0, 0.0, 5), std::invalid_argument);
  EXPECT_THROW(stats::Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --------------------------------------------------------------- time series

TEST(TimeSeries, AddAndAccess) {
  stats::TimeSeries ts("x");
  ts.add(0.0, 1.0);
  ts.add(10.0, 2.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_DOUBLE_EQ(ts.value(1), 2.0);
  EXPECT_THROW(ts.add(5.0, 0.0), std::invalid_argument);  // time went back
}

TEST(TimeSeries, SampleHold) {
  stats::TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(10.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.sample_hold(-1.0, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(ts.sample_hold(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.sample_hold(9.999), 1.0);
  EXPECT_DOUBLE_EQ(ts.sample_hold(10.0), 2.0);
  EXPECT_DOUBLE_EQ(ts.sample_hold(100.0), 2.0);
}

TEST(TimeSeries, Interpolate) {
  stats::TimeSeries ts;
  ts.add(0.0, 0.0);
  ts.add(10.0, 20.0);
  EXPECT_DOUBLE_EQ(ts.interpolate(5.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.interpolate(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.interpolate(15.0), 20.0);
}

TEST(TimeSeries, IntegrateHold) {
  stats::TimeSeries ts;
  ts.add(0.0, 2.0);
  ts.add(10.0, 4.0);
  // [0,10) at 2 plus [10,20] at 4 = 20 + 40.
  EXPECT_DOUBLE_EQ(ts.integrate_hold(0.0, 20.0), 60.0);
  EXPECT_DOUBLE_EQ(ts.integrate_hold(5.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.integrate_hold(10.0, 10.0), 0.0);
}

TEST(TimeSeries, MeanInWindow) {
  stats::TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.add(i, i);
  EXPECT_DOUBLE_EQ(ts.mean_in(2.0, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(100.0, 200.0), 0.0);
}

TEST(TimeSeries, MinMax) {
  stats::TimeSeries ts;
  ts.add(0.0, 3.0);
  ts.add(1.0, -1.0);
  ts.add(2.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.min_value(), -1.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 3.0);
}

// --------------------------------------------------------------- rate window

TEST(RateWindow, CountsPerWindow) {
  stats::RateWindow rw(1800.0);
  rw.record(100.0);
  rw.record(1799.0);
  rw.record(1800.0);
  EXPECT_EQ(rw.count_in_window(0), 2u);
  EXPECT_EQ(rw.count_in_window(1), 1u);
  EXPECT_EQ(rw.count_in_window(2), 0u);
  EXPECT_EQ(rw.total(), 3u);
}

TEST(RateWindow, HourlyRateScaling) {
  stats::RateWindow rw(1800.0);  // 30-min windows
  for (int i = 0; i < 5; ++i) rw.record(10.0 * i);
  EXPECT_DOUBLE_EQ(rw.hourly_rate(0), 10.0);  // 5 events per half hour
}

TEST(RateWindow, RejectsBadInput) {
  EXPECT_THROW(stats::RateWindow(0.0), std::invalid_argument);
  stats::RateWindow rw(10.0);
  EXPECT_THROW(rw.record(-1.0), std::invalid_argument);
}

// ----------------------------------------------------------------- quantiles

TEST(Quantile, ExactOrderStatistics) {
  stats::QuantileSketch q;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(q.median(), 3.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.0);
}

TEST(Quantile, InterpolatesBetweenSamples) {
  stats::QuantileSketch q;
  q.add(0.0);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.75), 7.5);
}

TEST(Quantile, Cdf) {
  stats::QuantileSketch q;
  q.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(q.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(q.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(q.cdf(10.0), 1.0);
}

TEST(Quantile, ErrorsOnEmptyOrBadQ) {
  stats::QuantileSketch q;
  EXPECT_THROW(q.quantile(0.5), std::invalid_argument);
  q.add(1.0);
  EXPECT_THROW(q.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(q.quantile(1.1), std::invalid_argument);
}

TEST(Quantile, FreeFunctionMatchesSketch) {
  EXPECT_DOUBLE_EQ(stats::quantile_of({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, AddAfterQueryResorts) {
  stats::QuantileSketch q;
  q.add(5.0);
  EXPECT_DOUBLE_EQ(q.median(), 5.0);
  q.add(1.0);
  q.add(9.0);
  EXPECT_DOUBLE_EQ(q.median(), 5.0);
  q.add(0.0);
  q.add(0.5);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 0.0);
}
