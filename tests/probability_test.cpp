// Tests for the paper's probability functions (Eqs. 1-4), including
// parameterized sweeps over the shape parameters.

#include <gtest/gtest.h>

#include <cmath>

#include "ecocloud/core/probability.hpp"

namespace core = ecocloud::core;

// ------------------------------------------------------------ f_a (Eqs. 1-2)

TEST(AssignmentFunction, ZeroAtBoundaries) {
  core::AssignmentFunction fa(0.9, 3.0);
  EXPECT_DOUBLE_EQ(fa(0.0), 0.0);
  EXPECT_DOUBLE_EQ(fa(0.9), 0.0);
  EXPECT_DOUBLE_EQ(fa(0.95), 0.0);  // above Ta
  EXPECT_DOUBLE_EQ(fa(-0.1), 0.0);
}

TEST(AssignmentFunction, NormalizedMaximumIsOne) {
  for (double p : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    core::AssignmentFunction fa(0.9, p);
    EXPECT_NEAR(fa(fa.argmax()), 1.0, 1e-12) << "p=" << p;
  }
}

TEST(AssignmentFunction, ArgmaxFormula) {
  core::AssignmentFunction fa(0.9, 3.0);
  EXPECT_DOUBLE_EQ(fa.argmax(), 0.75 * 0.9);
  core::AssignmentFunction fa5(0.8, 5.0);
  EXPECT_DOUBLE_EQ(fa5.argmax(), 5.0 / 6.0 * 0.8);
}

TEST(AssignmentFunction, NormalizerMatchesEq2) {
  const double ta = 0.9, p = 3.0;
  core::AssignmentFunction fa(ta, p);
  const double expected =
      std::pow(p, p) / std::pow(p + 1.0, p + 1.0) * std::pow(ta, p + 1.0);
  EXPECT_NEAR(fa.normalizer(), expected, 1e-15);
}

TEST(AssignmentFunction, Paper_Fig2_KnownValues) {
  // Spot values read off the analytic formula for Ta = 0.9 (Fig. 2).
  core::AssignmentFunction fa2(0.9, 2.0);
  // u* = 2/3 * 0.9 = 0.6
  EXPECT_NEAR(fa2(0.6), 1.0, 1e-12);
  core::AssignmentFunction fa3(0.9, 3.0);
  EXPECT_NEAR(fa3(0.675), 1.0, 1e-12);
  core::AssignmentFunction fa5(0.9, 5.0);
  EXPECT_NEAR(fa5(0.75), 1.0, 1e-12);
}

TEST(AssignmentFunction, WithThresholdVariant) {
  core::AssignmentFunction fa(0.9, 3.0);
  const auto variant = fa.with_threshold(0.5);
  EXPECT_DOUBLE_EQ(variant.ta(), 0.5);
  EXPECT_DOUBLE_EQ(variant.p(), 3.0);
  EXPECT_DOUBLE_EQ(variant(0.6), 0.0);       // above the new Ta
  EXPECT_NEAR(variant(0.375), 1.0, 1e-12);   // new argmax
}

TEST(AssignmentFunction, RejectsBadParameters) {
  EXPECT_THROW(core::AssignmentFunction(0.0, 3.0), std::invalid_argument);
  EXPECT_THROW(core::AssignmentFunction(1.1, 3.0), std::invalid_argument);
  EXPECT_THROW(core::AssignmentFunction(0.9, 0.0), std::invalid_argument);
  EXPECT_THROW(core::AssignmentFunction(0.9, -1.0), std::invalid_argument);
}

// Parameterized sweep: range, unimodality, monotone sides.
class AssignmentFunctionSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(AssignmentFunctionSweep, IsAValidUnimodalProbability) {
  const auto [ta, p] = GetParam();
  core::AssignmentFunction fa(ta, p);
  const double peak = fa.argmax();
  double previous = 0.0;
  for (int i = 0; i <= 1000; ++i) {
    const double u = i / 1000.0;
    const double value = fa(u);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0 + 1e-12);
    // Leave one grid step of slack around the peak: adjacent samples can
    // bracket it, in which case neither monotonicity claim applies.
    const double step = 1.0 / 1000.0;
    if (u > 1e-9 && u < peak - step) {
      EXPECT_GE(value, previous - 1e-12) << "must increase below argmax, u=" << u;
    }
    if (u > peak + step && u <= ta) {
      EXPECT_LE(value, previous + 1e-12) << "must decrease above argmax, u=" << u;
    }
    previous = value;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, AssignmentFunctionSweep,
    ::testing::Combine(::testing::Values(0.5, 0.8, 0.9, 1.0),
                       ::testing::Values(0.5, 1.0, 2.0, 3.0, 5.0, 10.0)));

// -------------------------------------------------------------- f_l (Eq. 3)

TEST(LowMigrationFunction, BoundaryValues) {
  core::LowMigrationFunction fl(0.3, 1.0);
  EXPECT_DOUBLE_EQ(fl(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fl(0.3), 0.0);
  EXPECT_DOUBLE_EQ(fl(0.5), 0.0);
  EXPECT_DOUBLE_EQ(fl(0.15), 0.5);  // linear for alpha = 1
}

TEST(LowMigrationFunction, AlphaShapesEagerness) {
  core::LowMigrationFunction eager(0.3, 0.25);
  core::LowMigrationFunction lazy(0.3, 4.0);
  // Smaller alpha gives higher migration probability in (0, Tl).
  for (double u : {0.05, 0.1, 0.2, 0.25}) {
    EXPECT_GT(eager(u), lazy(u)) << "u=" << u;
  }
}

TEST(LowMigrationFunction, Paper_Fig3_Values) {
  // Fig. 3 uses Tl = 0.3.
  core::LowMigrationFunction fl025(0.3, 0.25);
  EXPECT_NEAR(fl025(0.15), std::pow(0.5, 0.25), 1e-12);
  EXPECT_NEAR(fl025(0.27), std::pow(0.1, 0.25), 1e-12);
}

TEST(LowMigrationFunction, Validation) {
  EXPECT_THROW(core::LowMigrationFunction(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(core::LowMigrationFunction(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(core::LowMigrationFunction(0.3, 0.0), std::invalid_argument);
}

// -------------------------------------------------------------- f_h (Eq. 4)

TEST(HighMigrationFunction, BoundaryValues) {
  core::HighMigrationFunction fh(0.8, 1.0);
  EXPECT_DOUBLE_EQ(fh(0.8), 0.0);
  EXPECT_DOUBLE_EQ(fh(0.5), 0.0);
  EXPECT_DOUBLE_EQ(fh(1.0), 1.0);
  EXPECT_DOUBLE_EQ(fh(0.9), 0.5);  // linear for beta = 1
}

TEST(HighMigrationFunction, ClampsInputAboveOne) {
  core::HighMigrationFunction fh(0.8, 0.25);
  EXPECT_DOUBLE_EQ(fh(1.5), 1.0);
}

TEST(HighMigrationFunction, BetaShapesEagerness) {
  core::HighMigrationFunction eager(0.8, 0.25);
  core::HighMigrationFunction lazy(0.8, 4.0);
  for (double u : {0.82, 0.9, 0.95, 0.99}) {
    EXPECT_GT(eager(u), lazy(u)) << "u=" << u;
  }
}

TEST(HighMigrationFunction, Paper_Fig3_Values) {
  core::HighMigrationFunction fh025(0.8, 0.25);
  // f_h(0.9) = (1 + (0.9-1)/0.2)^0.25 = 0.5^0.25
  EXPECT_NEAR(fh025(0.9), std::pow(0.5, 0.25), 1e-12);
}

TEST(HighMigrationFunction, Validation) {
  EXPECT_THROW(core::HighMigrationFunction(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(core::HighMigrationFunction(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(core::HighMigrationFunction(0.8, 0.0), std::invalid_argument);
}

// Parameterized: both migration functions stay in [0,1] and are monotone.
class MigrationFunctionSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(MigrationFunctionSweep, LowIsMonotoneDecreasing) {
  const auto [threshold, shape] = GetParam();
  core::LowMigrationFunction fl(threshold, shape);
  double previous = 2.0;
  for (int i = 0; i <= 500; ++i) {
    const double u = i / 500.0;
    const double value = fl(u);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
    EXPECT_LE(value, previous + 1e-12);
    previous = value;
  }
}

TEST_P(MigrationFunctionSweep, HighIsMonotoneIncreasing) {
  const auto [threshold, shape] = GetParam();
  core::HighMigrationFunction fh(threshold, shape);
  double previous = -1.0;
  for (int i = 0; i <= 500; ++i) {
    const double u = i / 500.0;
    const double value = fh(u);
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 1.0);
    EXPECT_GE(value, previous - 1e-12);
    previous = value;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdShapeSweep, MigrationFunctionSweep,
    ::testing::Combine(::testing::Values(0.2, 0.3, 0.5, 0.8, 0.95),
                       ::testing::Values(0.25, 0.5, 1.0, 2.0)));
