// Tests for confidence intervals and the multi-seed replication runner.

#include <gtest/gtest.h>

#include <cmath>

#include "ecocloud/scenario/replication.hpp"
#include "ecocloud/stats/confidence.hpp"
#include "ecocloud/util/rng.hpp"

using namespace ecocloud;

// ------------------------------------------------------------------ Student-t

TEST(StudentT, KnownCriticalValues) {
  EXPECT_NEAR(stats::student_t_95(1), 12.706, 1e-3);
  EXPECT_NEAR(stats::student_t_95(4), 2.776, 1e-3);
  EXPECT_NEAR(stats::student_t_95(9), 2.262, 1e-3);
  EXPECT_NEAR(stats::student_t_95(30), 2.042, 1e-3);
  EXPECT_DOUBLE_EQ(stats::student_t_95(1000), 1.96);
  EXPECT_THROW(stats::student_t_95(0), std::invalid_argument);
}

TEST(StudentT, MonotoneDecreasing) {
  for (std::size_t df = 1; df < 30; ++df) {
    EXPECT_GT(stats::student_t_95(df), stats::student_t_95(df + 1));
  }
}

// ----------------------------------------------------------------------- CIs

TEST(MeanCi, HandComputedExample) {
  // Samples {1,2,3,4,5}: mean 3, sample sd sqrt(2.5), se sqrt(0.5),
  // t(4) = 2.776 -> half width 1.9629.
  const auto ci = stats::mean_ci_95({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_NEAR(ci.half_width, 2.776 * std::sqrt(0.5), 1e-3);
  EXPECT_NEAR(ci.lower(), 3.0 - ci.half_width, 1e-12);
  EXPECT_EQ(ci.n, 5u);
}

TEST(MeanCi, SingleSampleHasZeroWidth) {
  const auto ci = stats::mean_ci_95({7.0});
  EXPECT_DOUBLE_EQ(ci.mean, 7.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_THROW(stats::mean_ci_95({}), std::invalid_argument);
}

TEST(MeanCi, CoversTrueMeanAtNominalRate) {
  // 95% CIs over N(0,1) samples should cover 0 roughly 95% of the time.
  util::Rng rng(4242);
  int covered = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> samples;
    for (int i = 0; i < 8; ++i) samples.push_back(rng.normal());
    const auto ci = stats::mean_ci_95(samples);
    if (ci.lower() <= 0.0 && 0.0 <= ci.upper()) ++covered;
  }
  EXPECT_NEAR(covered / static_cast<double>(trials), 0.95, 0.02);
}

TEST(MeanCi, SeparationCheck) {
  stats::MeanCI a{10.0, 1.0, 5};
  stats::MeanCI b{13.0, 1.5, 5};
  stats::MeanCI c{11.5, 1.0, 5};
  EXPECT_TRUE(a.separated_from(b));
  EXPECT_FALSE(a.separated_from(c));
  EXPECT_TRUE(b.separated_from(a));
}

// ---------------------------------------------------------------- replication

namespace {

scenario::DailyConfig small_config() {
  scenario::DailyConfig config;
  config.fleet.num_servers = 25;
  config.num_vms = 300;
  config.horizon_s = 3.0 * sim::kHour;
  config.seed = 900;
  return config;
}

}  // namespace

TEST(Replication, AggregatesAcrossSeeds) {
  const auto result = scenario::run_replicated(
      small_config(), scenario::Algorithm::kEcoCloud, 4);
  EXPECT_EQ(result.replications, 4u);
  EXPECT_EQ(result.energy_kwh.n, 4u);
  EXPECT_GT(result.energy_kwh.mean, 0.0);
  EXPECT_GT(result.energy_kwh.half_width, 0.0);  // seeds differ
  EXPECT_GT(result.mean_active_servers.mean, 1.0);
}

TEST(Replication, SequentialAndParallelAgree) {
  util::ThreadPool pool(3);
  const auto sequential = scenario::run_replicated(
      small_config(), scenario::Algorithm::kEcoCloud, 3, nullptr);
  const auto parallel = scenario::run_replicated(
      small_config(), scenario::Algorithm::kEcoCloud, 3, &pool);
  EXPECT_DOUBLE_EQ(sequential.energy_kwh.mean, parallel.energy_kwh.mean);
  EXPECT_DOUBLE_EQ(sequential.migrations.mean, parallel.migrations.mean);
  EXPECT_DOUBLE_EQ(sequential.overload_percent.half_width,
                   parallel.overload_percent.half_width);
}

TEST(Replication, MatchesSingleRunForOneReplication) {
  auto config = small_config();
  const auto replicated =
      scenario::run_replicated(config, scenario::Algorithm::kEcoCloud, 1);
  scenario::DailyScenario daily(config);
  daily.run();
  const auto single = scenario::collect_metrics(daily);
  EXPECT_DOUBLE_EQ(replicated.energy_kwh.mean, single.energy_kwh);
  EXPECT_DOUBLE_EQ(replicated.migrations.mean, single.migrations);
  EXPECT_DOUBLE_EQ(replicated.energy_kwh.half_width, 0.0);
}

TEST(Replication, WorksForCentralizedAlgorithm) {
  const auto result = scenario::run_replicated(
      small_config(), scenario::Algorithm::kCentralized, 2);
  EXPECT_EQ(result.replications, 2u);
  EXPECT_GT(result.energy_kwh.mean, 0.0);
}

TEST(Replication, RejectsZeroReplications) {
  EXPECT_THROW(scenario::run_replicated(small_config(),
                                        scenario::Algorithm::kEcoCloud, 0),
               std::invalid_argument);
}
