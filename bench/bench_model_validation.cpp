// Validation of the fluid model's core ingredient: the probability that a
// VM lands on server s given the fleet's utilizations (Eq. 6). The exact
// Poisson-binomial expression is compared against the *empirical* landing
// frequency of the discrete invitation protocol itself — many independent
// rounds over a frozen fleet. This closes the loop between Sec. II
// (protocol) and Sec. IV (analysis).

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

#include "ecocloud/ode/fluid_model.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Model validation",
                "empirical landing shares vs Eq. (6) (exact) and Eq. (11)");

  // A frozen fleet with a spread of utilizations.
  const std::size_t n = 20;
  std::vector<double> u(n);
  dc::DataCenter d = bench::make_loaded_fleet(n, [&u](std::size_t s) {
    u[s] = 0.04 * static_cast<double>(s + 1);  // 0.04 .. 0.80
    return u[s] * 12000.0;
  });

  // Empirical: many invitation rounds for a tiny VM (so `fit` never
  // interferes), counting who wins.
  core::EcoCloudParams params;
  util::Rng rng(20130613);
  core::AssignmentProcedure proc(params, rng);
  std::vector<double> wins(n, 0.0);
  const int rounds = 200000;
  int decided = 0;
  for (int i = 0; i < rounds; ++i) {
    const auto result = proc.invite(d, 0.0, 1.0);
    if (result.server) {
      wins[*result.server] += 1.0;
      ++decided;
    }
  }
  for (double& w : wins) w /= static_cast<double>(decided);

  // Analytical shares under both models.
  auto make_model = [&](bool exact) {
    ode::FluidModelConfig config;
    config.num_servers = n;
    config.lambda = [](double) { return 1.0; };
    config.nu = [](double) { return 1.0; };
    config.vm_share.assign(n, 0.01);
    config.exact = exact;
    return ode::FluidModel(config);
  };
  const auto exact_shares = make_model(true).assignment_shares(u);
  const auto simpl_shares = make_model(false).assignment_shares(u);

  std::printf("server,utilization,empirical,exact_eq6,simplified_eq11\n");
  double max_err_exact = 0.0, max_err_simpl = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    std::printf("%zu,%.2f,%.5f,%.5f,%.5f\n", s, u[s], wins[s], exact_shares[s],
                simpl_shares[s]);
    max_err_exact = std::max(max_err_exact, std::fabs(wins[s] - exact_shares[s]));
    max_err_simpl = std::max(max_err_simpl, std::fabs(wins[s] - simpl_shares[s]));
  }
  std::printf(
      "# max |empirical - exact| = %.5f (Monte-Carlo noise scale ~%.5f); "
      "max |empirical - simplified| = %.5f\n",
      max_err_exact, 1.0 / std::sqrt(static_cast<double>(rounds) / n),
      max_err_simpl);
  std::printf(
      "# expected: exact matches to Monte-Carlo noise; simplified deviates "
      "slightly but preserves the ordering — the paper's Sec. IV premise\n");
}

void BM_ExactShares(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ode::FluidModelConfig config;
  config.num_servers = n;
  config.lambda = [](double) { return 1.0; };
  config.nu = [](double) { return 1.0; };
  config.vm_share.assign(n, 0.01);
  config.exact = true;
  ode::FluidModel model(config);
  std::vector<double> u(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = 0.8 * (i + 1.0) / n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.assignment_shares(u));
  }
}
BENCHMARK(BM_ExactShares)->Arg(20)->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
