// Ablation of the operational constants the paper leaves unspecified
// (DESIGN.md Sec. 5): the per-server monitor period ("every few seconds"),
// the live-migration latency, and the post-boot grace period. Quantifies
// how each choice moves the reported metrics, so readers can judge the
// robustness of the reproduction.

#include "bench_common.hpp"

#include "ecocloud/metrics/episode_summary.hpp"

using namespace ecocloud;

namespace {

scenario::DailyConfig sweep_config() {
  scenario::DailyConfig config = bench::scaled_daily_config(150, 2250, 24.0);
  return config;
}

void run_point(const char* knob, double value, scenario::DailyConfig config) {
  scenario::DailyScenario daily(config);
  daily.run();
  const auto s = bench::summarize_daily(daily);
  const auto eps =
      metrics::summarize_episodes(daily.datacenter().overload_episodes());
  std::printf("%s,%.0f,%.1f,%.1f,%llu,%.4f,%.1f,%.1f\n", knob, value,
              s.energy_kwh, s.mean_active,
              static_cast<unsigned long long>(s.migrations), s.overload_percent,
              eps.count ? eps.mean_duration_s : 0.0,
              100.0 * eps.fraction_under_30s);
}

void emit_series() {
  bench::banner("Ablation",
                "operational constants (monitor period, migration latency, grace)");
  std::printf(
      "knob,value,energy_kwh,mean_active,migrations,overload_pct,"
      "mean_violation_s,violations_under_30s_pct\n");

  for (double period : {5.0, 10.0, 30.0, 60.0}) {
    auto config = sweep_config();
    config.params.monitor_period_s = period;
    run_point("monitor_period_s", period, config);
  }
  for (double latency : {5.0, 10.0, 30.0, 60.0}) {
    auto config = sweep_config();
    config.params.migration_latency_s = latency;
    run_point("migration_latency_s", latency, config);
  }
  for (double grace : {300.0, 900.0, 1800.0, 3600.0}) {
    auto config = sweep_config();
    config.params.grace_period_s = grace;
    run_point("grace_period_s", grace, config);
  }
  std::printf(
      "# expected: violation durations scale with detection (monitor period) "
      "+ resolution (migration latency); the paper's <30 s / >=98%% claim "
      "needs both in the seconds range. Grace mainly shapes how fast woken "
      "servers reach critical mass\n");
}

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
