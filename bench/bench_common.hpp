#pragma once

/// \file bench_common.hpp
/// \brief Shared scaffolding for the per-figure bench binaries.
///
/// Every bench binary follows the same shape:
///   1. emit the figure's data series to stdout (CSV-style rows matching
///      the paper's axes), then
///   2. run google-benchmark timings of the computational kernels involved
///      (skipped with --series-only).
///
/// The 48-hour scenario benches share one configuration: a 6-hour warm-up
/// (the bootstrap transient of deploying 6,000 VMs into an empty data
/// center, which the paper's steady-state logs do not contain) followed by
/// the 48 reported hours. Reported times are shifted so hour 0 is the end
/// of the warm-up (midnight, as in the paper).

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "ecocloud/scenario/scenario.hpp"

namespace ecocloud::bench {

/// Warm-up skipped before the reported 48 hours.
inline constexpr sim::SimTime kWarmup = 6.0 * sim::kHour;

/// True high-water resident set size of this process in MB, from the
/// kernel's VmHWM counter in /proc/self/status — the peak over the whole
/// process lifetime, which is what a memory *budget* must be checked
/// against (a current-RSS sample at measurement time misses transients
/// like trace generation). Falls back to getrusage's ru_maxrss (also a
/// high-water mark, but coarser on some kernels) where /proc is absent.
inline double peak_rss_mb() {
  if (std::FILE* status = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), status) != nullptr) {
      long kib = 0;
      if (std::sscanf(line, "VmHWM: %ld", &kib) == 1) {
        std::fclose(status);
        return static_cast<double>(kib) / 1024.0;
      }
    }
    std::fclose(status);
  }
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
}

/// The paper's Sec. III configuration plus warm-up.
inline scenario::DailyConfig paper_daily_config() {
  scenario::DailyConfig config;
  config.warmup_s = kWarmup;
  config.horizon_s = kWarmup + 48.0 * sim::kHour;
  return config;
}

/// Daily configuration scaled to an arbitrary fleet/population/horizon —
/// the sweep benches all run reduced scenarios of this shape.
inline scenario::DailyConfig scaled_daily_config(std::size_t servers,
                                                 std::size_t vms, double hours,
                                                 sim::SimTime warmup = kWarmup) {
  scenario::DailyConfig config;
  config.fleet.num_servers = servers;
  config.num_vms = vms;
  config.warmup_s = warmup;
  config.horizon_s = warmup + hours * sim::kHour;
  return config;
}

/// Fully active fleet of \p n identical servers (micro-kernel setup shared
/// by the google-benchmark bodies).
inline dc::DataCenter make_active_fleet(std::size_t n, unsigned cores = 6,
                                        double core_mhz = 2000.0,
                                        double ram_mb = 0.0) {
  dc::DataCenter d;
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = d.add_server(cores, core_mhz, ram_mb);
    d.start_booting(0.0, s);
    d.finish_booting(0.0, s);
  }
  return d;
}

/// Active fleet with one VM per server; \p demand_mhz(i) gives VM i's
/// demand so benches control the utilization profile.
template <typename DemandFn>
dc::DataCenter make_loaded_fleet(std::size_t n, DemandFn&& demand_mhz,
                                 unsigned cores = 6, double core_mhz = 2000.0) {
  dc::DataCenter d;
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = d.add_server(cores, core_mhz);
    d.start_booting(0.0, s);
    d.finish_booting(0.0, s);
    const auto v = d.create_vm(demand_mhz(i));
    d.place_vm(0.0, v, s);
  }
  return d;
}

/// Reported hour for a sample time (warm-up-shifted).
inline double report_hour(sim::SimTime t) { return (t - kWarmup) / sim::kHour; }

/// True if the sample at time \p t falls in the reported 48 hours.
inline bool in_report_window(sim::SimTime t) {
  return t > kWarmup + 1e-9;
}

/// Emit the figure banner expected at the top of each bench's output.
inline void banner(const char* figure, const char* description) {
  std::printf("# %s — %s\n", figure, description);
}

/// Headline numbers of a completed daily run (ablation/comparison rows).
struct DailySummary {
  double energy_kwh = 0.0;
  double mean_active = 0.0;
  double overload_percent = 0.0;  // over the whole reported window
  std::uint64_t migrations = 0;
  std::uint64_t switches = 0;  // activations + hibernations after warm-up
  std::size_t max_inflight = 0;  // peak simultaneous migrations
};

/// Summarize a finished DailyScenario. Accounting was reset at the end of
/// the warm-up, so the DataCenter accumulators cover the reported window.
inline DailySummary summarize_daily(scenario::DailyScenario& daily) {
  DailySummary out;
  const auto& d = daily.datacenter();
  out.energy_kwh = d.energy_joules() / 3.6e6;
  out.migrations = d.total_migrations();
  out.switches = d.total_activations() + d.total_hibernations();
  out.max_inflight = d.max_inflight_migrations();
  out.overload_percent =
      d.vm_seconds() > 0.0 ? 100.0 * d.overload_vm_seconds() / d.vm_seconds() : 0.0;
  double active = 0.0;
  std::size_t n = 0;
  for (const auto& s : daily.collector().samples()) {
    if (!in_report_window(s.time)) continue;
    active += static_cast<double>(s.active_servers);
    ++n;
  }
  out.mean_active = n ? active / static_cast<double>(n) : 0.0;
  return out;
}

/// Parse --series-only; everything else is forwarded to google-benchmark.
inline bool series_only(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--series-only") == 0) return true;
  }
  return false;
}

/// Run the registered google-benchmarks unless --series-only was given.
inline int run_benchmarks(int argc, char** argv) {
  if (series_only(argc, argv)) return 0;
  // Strip our flag before handing argv to google-benchmark.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--series-only") != 0) args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  std::printf("\n# --- kernel timings (google-benchmark) ---\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ecocloud::bench
