// Figure 3: migration probability functions f_l and f_h for alpha, beta in
// {1, 0.25}, Tl = 0.3, Th = 0.8 (paper Sec. II, Eqs. 3-4).

#include "bench_common.hpp"

#include "ecocloud/core/probability.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 3", "migration probability functions, Tl=0.3 Th=0.8");
  const core::LowMigrationFunction fl1(0.3, 1.0);
  const core::LowMigrationFunction fl025(0.3, 0.25);
  const core::HighMigrationFunction fh1(0.8, 1.0);
  const core::HighMigrationFunction fh025(0.8, 0.25);
  std::printf("u,fl_alpha1,fl_alpha025,fh_beta1,fh_beta025\n");
  for (int i = 0; i <= 100; ++i) {
    const double u = i / 100.0;
    std::printf("%.2f,%.6f,%.6f,%.6f,%.6f\n", u, fl1(u), fl025(u), fh1(u), fh025(u));
  }
}

void BM_MigrationFunctionEval(benchmark::State& state) {
  const core::LowMigrationFunction fl(0.3, 0.25);
  const core::HighMigrationFunction fh(0.8, 0.25);
  double u = 0.0;
  for (auto _ : state) {
    u += 1e-6;
    if (u > 1.0) u = 0.0;
    benchmark::DoNotOptimize(fl(u));
    benchmark::DoNotOptimize(fh(u));
  }
}
BENCHMARK(BM_MigrationFunctionEval);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
