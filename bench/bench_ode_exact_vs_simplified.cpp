// Paper Sec. IV: "we also propose a simplified model. The results of this
// model proved to be very close to those of the exact model." Quantify
// that: integrate both models from identical states and report the maximum
// per-server divergence and the cost ratio.

#include <algorithm>
#include <chrono>
#include <cmath>

#include "bench_common.hpp"

#include "ecocloud/ode/fluid_model.hpp"

using namespace ecocloud;

namespace {

ode::FluidModelConfig make_config(std::size_t n, bool exact) {
  ode::FluidModelConfig config;
  config.num_servers = n;
  // Balanced open system around total utilization = n/4.
  const double nu = 1e-4;
  const double share = 0.02;
  const double lambda = nu * (static_cast<double>(n) / 4.0) / share;
  config.lambda = [lambda](double) { return lambda; };
  config.nu = [nu](double) { return nu; };
  config.vm_share.assign(n, share);
  config.exact = exact;
  return config;
}

std::vector<double> initial_state(std::size_t n) {
  util::Rng rng(777);
  std::vector<double> u(n);
  for (auto& x : u) x = rng.uniform(0.10, 0.35);
  return u;
}

void emit_series() {
  bench::banner("Model check", "exact (Eqs. 5-9) vs simplified (Eq. 11) fluid model");
  std::printf("num_servers,max_abs_diff,mean_abs_diff,active_exact,active_simpl\n");
  for (std::size_t n : {10u, 20u, 50u, 100u}) {
    ode::FluidModel exact(make_config(n, true));
    ode::FluidModel simplified(make_config(n, false));
    const auto u0 = initial_state(n);
    const double horizon = 6.0 * sim::kHour;
    const auto ue = ode::integrate_rk4(exact.rhs(), u0, 0.0, horizon, 10.0);
    const auto us = ode::integrate_rk4(simplified.rhs(), u0, 0.0, horizon, 10.0);
    double max_diff = 0.0, mean_diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double diff = std::fabs(ue[i] - us[i]);
      max_diff = std::max(max_diff, diff);
      mean_diff += diff;
    }
    mean_diff /= static_cast<double>(n);
    std::printf("%zu,%.4f,%.4f,%zu,%zu\n", n, max_diff, mean_diff,
                ode::FluidModel::count_active(ue),
                ode::FluidModel::count_active(us));
  }
  std::printf(
      "# expected: small divergence and identical active counts — the "
      "paper's justification for using Eq. (11)\n");
}

void BM_ExactRhs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ode::FluidModel model(make_config(n, true));
  const auto u = initial_state(n);
  std::vector<double> dudt(n);
  for (auto _ : state) {
    model.derivative(0.0, u, dudt);
    benchmark::DoNotOptimize(dudt.data());
  }
}
BENCHMARK(BM_ExactRhs)->Arg(10)->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_SimplifiedRhs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ode::FluidModel model(make_config(n, false));
  const auto u = initial_state(n);
  std::vector<double> dudt(n);
  for (auto _ : state) {
    model.derivative(0.0, u, dudt);
    benchmark::DoNotOptimize(dudt.data());
  }
}
BENCHMARK(BM_SimplifiedRhs)->Arg(10)->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
