// Figure 8: power consumed by the data center over two days. The power
// must follow the load smoothly, with no peaks or sudden variations
// (paper Sec. III).

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 8", "data-center power (W) over 48 h");
  scenario::DailyScenario daily(bench::paper_daily_config());
  daily.run();

  std::printf("hour,power_w,window_energy_kwh,overall_load\n");
  double max_step = 0.0;
  double previous = -1.0;
  double energy_kwh = 0.0;
  for (const auto& s : daily.collector().samples()) {
    if (!bench::in_report_window(s.time)) continue;
    std::printf("%.1f,%.0f,%.3f,%.4f\n", bench::report_hour(s.time), s.power_w,
                s.window_energy_j / 3.6e6, s.overall_load);
    if (previous >= 0.0) {
      max_step = std::max(max_step, std::fabs(s.power_w - previous) / previous);
    }
    previous = s.power_w;
    energy_kwh += s.window_energy_j / 3.6e6;
  }
  std::printf(
      "# 48 h energy: %.0f kWh; max half-hour power step: %.1f%% (paper: "
      "smooth adaptation, 25-40 kW band)\n",
      energy_kwh, 100.0 * max_step);
}

void BM_PowerModelEval(benchmark::State& state) {
  dc::PowerModel pm;
  dc::ServerSoA server_soa;
  dc::Server server = server_soa.add(6, 2000.0);
  server.set_state(dc::ServerState::kActive);
  server.host_vm(0, 6000.0, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.power_w(server));
  }
}
BENCHMARK(BM_PowerModelEval);

void BM_EnergyAccountingAdvance(benchmark::State& state) {
  dc::DataCenter d;
  for (int i = 0; i < 400; ++i) d.add_server(6, 2000.0);
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    d.advance_to(t);
    benchmark::DoNotOptimize(d.energy_joules());
  }
}
BENCHMARK(BM_EnergyAccountingAdvance);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
