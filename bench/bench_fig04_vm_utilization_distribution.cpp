// Figure 4: distribution of the average CPU utilization of the 6,000 VMs
// (paper Sec. III). Our synthetic workload is calibrated to reproduce this
// marginal; the bench regenerates the traces and reports the histogram.

#include "bench_common.hpp"

#include "ecocloud/stats/histogram.hpp"
#include "ecocloud/stats/welford.hpp"
#include "ecocloud/trace/trace_set.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 4", "distribution of per-VM average CPU utilization (%)");
  trace::WorkloadModel model;
  util::Rng rng(20130520);
  stats::Histogram hist(0.0, 100.0, 40);  // 2.5%-wide bins, as in the figure
  stats::Welford acc;
  for (int vm = 0; vm < 6000; ++vm) {
    const double avg = model.sample_average_percent(rng);
    hist.add(avg);
    acc.add(avg);
  }
  std::printf("avg_cpu_bin_center,freq\n");
  for (std::size_t i = 0; i < hist.num_bins(); ++i) {
    std::printf("%.2f,%.5f\n", hist.bin_center(i), hist.frequency(i));
  }
  std::printf("# mean=%.2f%% under20=%.3f under10=%.3f (paper: most VMs < 20%%)\n",
              acc.mean(), hist.fraction_within(0.0, 20.0),
              hist.fraction_within(0.0, 10.0));
}

void BM_SampleAverages(benchmark::State& state) {
  trace::WorkloadModel model;
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample_average_percent(rng));
  }
}
BENCHMARK(BM_SampleAverages);

void BM_GenerateTraceSet6000(benchmark::State& state) {
  trace::WorkloadModel model;
  for (auto _ : state) {
    util::Rng rng(2);
    auto set = trace::TraceSet::generate(model, 6000, 12, rng);
    benchmark::DoNotOptimize(set.num_vms());
  }
}
BENCHMARK(BM_GenerateTraceSet6000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
