// Ablation (paper Sec. I): the value of consolidation hinges on servers
// NOT being energy-proportional — "an active but idle server consumes
// approximately 65-70% of the power consumed when it is fully utilized".
// Sweep the idle fraction and compare ecoCloud against the no-consolidation
// static spread: the more disproportional the hardware, the larger the
// saving.

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

double run_energy(double idle_fraction, scenario::Algorithm algorithm) {
  scenario::DailyConfig config = bench::scaled_daily_config(120, 1800, 24.0);
  scenario::DailyScenario daily(config, algorithm);
  // Rebuild the data center's power model via a fresh scenario is not
  // possible post-hoc; instead scale using a custom fleet. The power model
  // lives in the DataCenter, so we rebuild with a tweaked scenario: the
  // DailyScenario constructs the DataCenter internally with the default
  // model, so for this sweep we recompute energy from the utilization
  // samples, which the linear model makes exact:
  //   P(u) = peak * (f + (1-f) * u) for active servers (+ sleepers).
  daily.run();
  (void)idle_fraction;

  // Exact re-integration under the requested idle fraction using the
  // recorded per-server snapshots (piecewise-constant between samples).
  const auto& snaps = daily.collector().utilization_snapshots();
  const auto& samples = daily.collector().samples();
  const dc::PowerModel reference;  // for peak watts per class
  double joules = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (!bench::in_report_window(samples[i].time)) continue;
    double watts = 0.0;
    for (std::size_t s = 0; s < snaps[i].size(); ++s) {
      const auto& server = daily.datacenter().server(static_cast<dc::ServerId>(s));
      const double peak = reference.peak_w(server.num_cores());
      if (snaps[i][s] > 0.0) {
        watts += peak * (idle_fraction + (1.0 - idle_fraction) * snaps[i][s]);
      } else {
        // A zero snapshot is hibernated or (rare, transient) active-empty;
        // treating both as sleeping slightly favours ecoCloud, by less
        // than the hibernate-delay share of the horizon.
        watts += 3.0;
      }
    }
    joules += watts * 1800.0;
  }
  return joules / 3.6e6;
}

void emit_series() {
  bench::banner("Ablation",
                "energy-proportionality: idle power fraction vs saving (Sec. I)");
  std::printf("idle_fraction,ecocloud_kwh,static_kwh,saving_pct\n");
  for (double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double eco = run_energy(f, scenario::Algorithm::kEcoCloud);
    const double flat = run_energy(f, scenario::Algorithm::kStatic);
    std::printf("%.1f,%.1f,%.1f,%.1f\n", f, eco, flat, 100.0 * (1.0 - eco / flat));
  }
  std::printf(
      "# expected: savings grow with the idle fraction — with perfectly "
      "proportional servers (f=0) consolidation would barely matter, at the "
      "paper's f=0.7 it is decisive\n");
}

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
