// Figure 9: number of low and high migrations per hour. High migrations
// concentrate in the load ramps, low migrations in the descents; the total
// stays in the low hundreds per hour for the whole 400-server data center.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 9", "low/high migrations per hour over 48 h");
  scenario::DailyScenario daily(bench::paper_daily_config());
  daily.run();

  const auto& collector = daily.collector();
  std::printf("hour,low_per_hour,high_per_hour\n");
  double max_total = 0.0;
  std::uint64_t total = 0;
  for (const auto& s : collector.samples()) {
    if (!bench::in_report_window(s.time)) continue;
    const auto w = static_cast<std::size_t>(s.time / collector.sample_period_s()) - 1;
    const double low = collector.low_migrations().hourly_rate(w);
    const double high = collector.high_migrations().hourly_rate(w);
    std::printf("%.1f,%.0f,%.0f\n", bench::report_hour(s.time), low, high);
    max_total = std::max(max_total, low + high);
    total += collector.low_migrations().count_in_window(w) +
             collector.high_migrations().count_in_window(w);
  }
  const double per_server_hours =
      static_cast<double>(total) / 48.0 / 400.0;
  std::printf(
      "# peak total: %.0f/h; mean per server: one migration every %.1f h "
      "(paper: <200-250/h total, one per server every ~2 h)\n",
      max_total, per_server_hours > 0 ? 1.0 / per_server_hours : 0.0);
}

void BM_MigrationCheck(benchmark::State& state) {
  // 100 active servers at mixed utilizations; one source below Tl.
  dc::DataCenter d = bench::make_loaded_fleet(
      100, [](std::size_t i) { return (i == 0 ? 0.2 : 0.7) * 12000.0; });
  core::EcoCloudParams params;
  util::Rng rng(5);
  core::AssignmentProcedure assignment(params, rng);
  core::MigrationProcedure migration(params, assignment, rng);
  for (auto _ : state) {
    d.server_mutable(0).set_migration_cooldown_until(-1.0);
    bool fired = false;
    benchmark::DoNotOptimize(migration.check(d, 0, 0.0, &fired));
  }
}
BENCHMARK(BM_MigrationCheck);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
