// Ablation (paper Sec. II): the shape parameter p moves the assignment
// sweet-spot toward Ta (argmax = p/(p+1) * Ta) and thereby tunes the
// consolidation effort. Sweep p and report the headline metrics.

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

scenario::DailyConfig sweep_config() {
  // Half-scale run per point keeps the whole sweep fast while preserving
  // the dynamics.
  scenario::DailyConfig config = bench::scaled_daily_config(200, 3000, 24.0);
  return config;
}

void emit_series() {
  bench::banner("Ablation", "assignment shape p (Sec. II: argmax = p/(p+1)*Ta)");
  std::printf(
      "p,argmax_u,energy_kwh,mean_active,migrations,switches,overload_pct\n");
  for (double p : {1.0, 2.0, 3.0, 5.0, 8.0}) {
    scenario::DailyConfig config = sweep_config();
    config.params.p = p;
    scenario::DailyScenario daily(config);
    daily.run();
    const auto s = bench::summarize_daily(daily);
    const core::AssignmentFunction fa(config.params.ta, p);
    std::printf("%.0f,%.3f,%.1f,%.1f,%llu,%llu,%.4f\n", p, fa.argmax(),
                s.energy_kwh, s.mean_active,
                static_cast<unsigned long long>(s.migrations),
                static_cast<unsigned long long>(s.switches), s.overload_percent);
  }
  std::printf(
      "# expected: larger p -> servers accept closer to Ta -> fewer active "
      "servers / lower energy, at the cost of more overload pressure\n");
}

void BM_SweepPoint(benchmark::State& state) {
  for (auto _ : state) {
    scenario::DailyConfig config = bench::scaled_daily_config(50, 750, 6.0);
    scenario::DailyScenario daily(config);
    daily.run();
    benchmark::DoNotOptimize(daily.datacenter().energy_joules());
  }
}
BENCHMARK(BM_SweepPoint)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
