// Figure 13: the same consolidation transient as Fig. 12, obtained with
// the fluid model (Eq. 11). Exactly as the paper does, lambda(t) is
// estimated from the (simulated) trace of arrivals, the initial conditions
// u_s(0) are copied from the simulation, and the differential equations
// are integrated numerically. The paper finds the model consolidates on 43
// servers where the simulation used 45.

#include <algorithm>

#include "bench_common.hpp"

#include "ecocloud/ode/fluid_model.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 13", "consolidation transient, fluid model (Eq. 11)");

  // Step 1: run the Fig.-12 simulation to harvest lambda(t) and u_s(0).
  scenario::ConsolidationConfig sim_config;
  scenario::ConsolidationScenario cons(sim_config);
  cons.run();
  const auto& first_snapshot = cons.collector().utilization_snapshots().front();

  // Step 2: build the fluid model with the same inputs.
  ode::FluidModelConfig config;
  config.num_servers = sim_config.num_servers;
  config.ta = sim_config.params.ta;
  config.p = sim_config.params.p;
  config.lambda = cons.rates().lambda_fn();  // "computed from the traces"
  const double nu = cons.nu();
  config.nu = [nu](double) { return nu; };
  config.vm_share.assign(sim_config.num_servers, cons.mean_vm_share());
  config.exact = false;  // Eq. (11), the simplified model
  ode::FluidModel model(config);

  // Step 3: integrate and report on the Fig.-12 cadence.
  std::printf("hour,active,mean_u,u_p10,u_p50,u_p90\n");
  const double sample_every = sim_config.sample_period_s;
  double next_sample = 0.0;
  const auto observe = [&](double t, const std::vector<double>& u) {
    if (t + 1e-9 < next_sample) return;
    next_sample += sample_every;
    std::vector<double> sorted;
    double total = 0.0;
    for (double x : u) {
      total += x;
      if (x > 0.01) sorted.push_back(x);
    }
    std::sort(sorted.begin(), sorted.end());
    const auto q = [&](double p) {
      return sorted.empty()
                 ? 0.0
                 : sorted[static_cast<std::size_t>(p * (sorted.size() - 1))];
    };
    std::printf("%.2f,%zu,%.4f,%.3f,%.3f,%.3f\n", t / sim::kHour,
                ode::FluidModel::count_active(u), total / u.size(), q(0.10),
                q(0.50), q(0.90));
  };

  const auto final_u = ode::integrate_rk4(
      model.rhs(), first_snapshot, 0.0, sim_config.horizon_s, 10.0, observe);

  const std::size_t ode_active = ode::FluidModel::count_active(final_u);
  const std::size_t sim_active = cons.datacenter().active_server_count();
  std::printf(
      "# final active: fluid model=%zu vs simulation=%zu (paper: 43 vs 45); "
      "|diff|=%zu\n",
      ode_active, sim_active,
      ode_active > sim_active ? ode_active - sim_active : sim_active - ode_active);
}

void BM_SimplifiedRhs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ode::FluidModelConfig config;
  config.num_servers = n;
  config.lambda = [](double) { return 0.1; };
  config.nu = [](double) { return 1e-4; };
  config.vm_share.assign(n, 0.02);
  ode::FluidModel model(config);
  std::vector<double> u(n), dudt(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = 0.1 + 0.8 * (i % 10) / 10.0;
  for (auto _ : state) {
    model.derivative(0.0, u, dudt);
    benchmark::DoNotOptimize(dudt.data());
  }
}
BENCHMARK(BM_SimplifiedRhs)->Arg(100)->Arg(400);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
