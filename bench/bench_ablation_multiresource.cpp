// Paper Sec. V (future work): two ways to extend the Bernoulli approach to
// multiple resources — per-resource trials AND-ed together, or a single
// trial on the critical resource with the others as constraints. Deploy a
// CPU+RAM workload with each strategy and compare packing, balance and
// rejection behaviour.

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

#include "ecocloud/multires/multi_resource.hpp"
#include "ecocloud/stats/welford.hpp"

using namespace ecocloud;

namespace {

struct Workload {
  std::vector<double> cpu_mhz;
  std::vector<double> ram_mb;
};

Workload make_workload(std::size_t n) {
  trace::WorkloadModel model;
  util::Rng rng(99);
  Workload w;
  for (std::size_t i = 0; i < n; ++i) {
    w.cpu_mhz.push_back(model.percent_to_mhz(model.sample_average_percent(rng)));
    w.ram_mb.push_back(model.sample_ram_mb(rng));
  }
  return w;
}

void run_strategy(multires::Strategy strategy, const Workload& workload) {
  // 60 servers, 6 cores, 16 GB each. RAM is the scarcer dimension for this
  // workload (mean VM: ~0.3 GHz CPU, ~2.3 GB RAM).
  dc::DataCenter d = bench::make_active_fleet(60, 6, 2000.0, 16384.0);
  core::EcoCloudParams params;
  util::Rng rng(7);
  multires::MultiResourceAssignment proc(params, strategy, rng);

  std::size_t placed = 0, forced = 0, rejected = 0;
  for (std::size_t i = 0; i < workload.cpu_mhz.size(); ++i) {
    const double cpu = workload.cpu_mhz[i];
    const double ram = workload.ram_mb[i];
    // A refused invitation is retried a few times (servers answer
    // probabilistically). If nobody ever volunteers, the manager falls
    // back to the wake-up path: the least-loaded server that physically
    // fits takes the VM (the bootstrap mechanism of Sec. II — an empty
    // fleet has f_a(0) = 0 everywhere).
    bool done = false;
    for (int attempt = 0; attempt < 10 && !done; ++attempt) {
      const auto result = proc.invite(d, cpu, ram);
      if (result.server) {
        const auto vm = d.create_vm(cpu, ram);
        d.place_vm(0.0, vm, *result.server);
        ++placed;
        done = true;
      }
    }
    if (!done) {
      dc::ServerId best = dc::kNoServer;
      for (const auto& server : d.servers()) {
        if (server.demand_mhz() + cpu > server.capacity_mhz()) continue;
        if (server.ram_used_mb() + ram > server.ram_capacity_mb()) continue;
        if (best == dc::kNoServer ||
            server.demand_mhz() < d.server(best).demand_mhz()) {
          best = server.id();
        }
      }
      if (best != dc::kNoServer) {
        const auto vm = d.create_vm(cpu, ram);
        d.place_vm(0.0, vm, best);
        ++forced;
      } else {
        ++rejected;
      }
    }
  }

  stats::Welford cpu_u, ram_u;
  std::size_t loaded_servers = 0;
  for (const auto& server : d.servers()) {
    if (server.empty()) continue;
    ++loaded_servers;
    cpu_u.add(server.utilization());
    ram_u.add(server.ram_used_mb() / server.ram_capacity_mb());
  }
  std::printf("%s,%zu,%zu,%zu,%zu,%.3f,%.3f,%.3f,%.3f\n",
              multires::to_string(strategy), placed, forced, rejected,
              loaded_servers, cpu_u.mean(), ram_u.mean(), cpu_u.stddev(),
              ram_u.stddev());
}

void emit_series() {
  bench::banner("Extension", "multi-resource strategies (Sec. V future work)");
  const Workload workload = make_workload(350);
  std::printf(
      "strategy,placed_by_trial,forced,rejected,loaded_servers,mean_cpu_u,"
      "mean_ram_u,sd_cpu_u,sd_ram_u\n");
  run_strategy(multires::Strategy::kAllTrials, workload);
  run_strategy(multires::Strategy::kCriticalTrial, workload);
  std::printf(
      "# expected: critical-trial packs onto fewer servers (higher mean "
      "utilization); all-trials is more conservative on the second "
      "resource\n");
}

void BM_MultiResourceInvite(benchmark::State& state) {
  dc::DataCenter d;
  for (int i = 0; i < 200; ++i) {
    const auto s = d.add_server(6, 2000.0, 16384.0);
    d.start_booting(0.0, s);
    d.finish_booting(0.0, s);
    const auto v = d.create_vm(0.5 * 12000.0, 8000.0);
    d.place_vm(0.0, v, s);
  }
  core::EcoCloudParams params;
  util::Rng rng(8);
  multires::MultiResourceAssignment proc(params, multires::Strategy::kAllTrials,
                                         rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.invite(d, 300.0, 2000.0));
  }
}
BENCHMARK(BM_MultiResourceInvite)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
