// Engine-throughput benchmark: how many simulator events per second the
// ecoCloud engine sustains on trace-driven daily scenarios. Unlike the
// figure benches this one measures the *simulation engine itself* — the
// event calendar, the per-state server indices, the controller hot path —
// so the numbers are tracked across PRs via BENCH_engine.json.
//
// Scenarios:
//   paper      — the paper's Sec. III experiment: 400 servers / 6,000 VMs /
//                48 h (+ 6 h warm-up).
//   scaleup    — 10x the paper: 4,000 servers / 60,000 VMs / 48 h, where any
//                O(num_servers) cost on the per-event path dominates.
//   sharded    — the scaleup fleet through the sharded parallel engine
//                (par::ShardedDailyRun), one row per entry of the
//                --threads list at a fixed --shards count.
//   scaleup16k — 40x the paper: 16,000 servers / 240,000 VMs / 48 h, run
//                both single-threaded and sharded.
//   planet100k — 100,000 servers / 1.5M VMs on a short horizon, run single
//                and sharded, both on streaming traces; both rows use the
//                O(1) sampler with invite_group_size = 64.
//   planet1m   — 1,000,000 servers / 15M VMs, streaming traces, single
//                only (one row is enough to track the per-event hot path;
//                the sharded engine streams too — see planet100k).
//   ci         — reduced smoke: 100 servers / 1,500 VMs / 6 h (CI runners).
//
// Output: one JSON object per run (events, wall seconds, events/sec,
// peak RSS, heap allocations, execution mode/shards/threads) written to
// --out (default BENCH_engine.json). The file also records
// host_hardware_threads — sharded-mode wall times are only meaningful
// relative to that number; on a single-core host every thread count
// serializes onto the same core and the matrix degenerates to overhead
// measurement — plus host_cpu_model and the monitor kernel the dispatcher
// picked ("avx2"/"scalar"), without which throughput rows are not
// comparable across hosts. CI fails on crash or malformed JSON only —
// never on wall time.

#include "bench_common.hpp"


#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ecocloud/dc/monitor_kernel.hpp"
#include "ecocloud/par/sharded_runner.hpp"
#include "ecocloud/util/phase_profiler.hpp"

// Heap-allocation counter: the engine claims "no allocation per event", so
// the bench counts global operator new calls around each run. Replacing
// operator new is binary-wide, which is exactly the scope we want here.
namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ecocloud;

// --profile: wrap each run in the phase profiler and report the per-phase
// wall-time split plus the profiler's self-measured overhead ratio, which
// the CI perf-smoke leg holds to the <= 3% budget.
bool g_profile = false;

// --repeat N: run every row N times and keep the fastest attempt. Wall
// clocks on shared hosts carry tens of percent of neighbor noise that
// only ever ADDS time, so the minimum is the defensible throughput
// figure — the same reasoning behind the CI overhead budget's min-of-3.
// Every attempt still prints its CSV row; only the best lands in the
// JSON.
unsigned g_repeat = 1;

struct ProfileResult {
  bool enabled = false;
  double overhead_ratio = 0.0;
  double phase_seconds[util::kNumPhases] = {};
  std::uint64_t phase_calls[util::kNumPhases] = {};
};

ProfileResult profile_result(const util::PhaseProfiler& profiler,
                             double wall_s) {
  ProfileResult out;
  out.enabled = true;
  out.overhead_ratio =
      wall_s > 0.0 ? profiler.overhead_seconds() / wall_s : 0.0;
  for (std::size_t p = 0; p < util::kNumPhases; ++p) {
    const util::PhaseStats st = profiler.total(static_cast<util::Phase>(p));
    out.phase_seconds[p] = st.estimated_ns() * 1e-9;
    out.phase_calls[p] = st.calls;
  }
  return out;
}

/// "model name" from /proc/cpuinfo — throughput rows are meaningless
/// across hosts without it. "unknown" off Linux or in stripped containers.
std::string host_cpu_model() {
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (!f) return "unknown";
  std::string model = "unknown";
  char line[512];
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    if (const char* colon = std::strchr(line, ':')) {
      model.assign(colon + 1);
      while (!model.empty() && (model.front() == ' ' || model.front() == '\t'))
        model.erase(model.begin());
      while (!model.empty() && (model.back() == '\n' || model.back() == '\r' ||
                                model.back() == ' '))
        model.pop_back();
      for (char& c : model)
        if (c == '"' || c == '\\') c = '\'';  // keep the JSON trivially valid
    }
    break;
  }
  std::fclose(f);
  return model;
}

struct EngineRun {
  std::string name;
  std::string mode = "single";  // "single" | "sharded"
  std::size_t shards = 1;
  std::size_t threads = 1;
  std::size_t servers = 0;
  std::size_t vms = 0;
  double sim_hours = 0.0;  // reported horizon, warm-up excluded
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double peak_rss_mb = 0.0;
  std::uint64_t allocations = 0;
  std::uint64_t migrations = 0;
  std::uint64_t cross_shard_migrations = 0;
  double energy_kwh = 0.0;
  ProfileResult profile;
};

void print_row(const EngineRun& r) {
  std::printf("%s,%s,%zu,%zu,%zu,%zu,%.0f,%llu,%.3f,%.0f,%.1f,%llu\n",
              r.name.c_str(), r.mode.c_str(), r.shards, r.threads, r.servers,
              r.vms, r.sim_hours, static_cast<unsigned long long>(r.events),
              r.wall_s, r.events_per_sec, r.peak_rss_mb,
              static_cast<unsigned long long>(r.allocations));
}

EngineRun run_scenario_config_once(const char* name,
                                   scenario::DailyConfig config, double hours) {
  EngineRun out;
  out.name = name;
  out.servers = config.fleet.num_servers;
  out.vms = config.num_vms;
  out.sim_hours = hours;

  scenario::DailyScenario daily(std::move(config));

  std::optional<util::PhaseProfiler> profiler;
  if (g_profile) profiler.emplace(1);

  const std::uint64_t allocs_before =
      g_allocation_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  {
    util::DomainScope scope(profiler ? &profiler->domain(0) : nullptr);
    daily.run();
  }
  const auto stop = std::chrono::steady_clock::now();
  out.allocations =
      g_allocation_count.load(std::memory_order_relaxed) - allocs_before;

  out.events = daily.simulator().executed_events();
  out.wall_s = std::chrono::duration<double>(stop - start).count();
  if (profiler) out.profile = profile_result(*profiler, out.wall_s);
  out.events_per_sec =
      out.wall_s > 0.0 ? static_cast<double>(out.events) / out.wall_s : 0.0;
  out.peak_rss_mb = bench::peak_rss_mb();
  out.migrations = daily.datacenter().total_migrations();
  out.energy_kwh = daily.datacenter().energy_joules() / 3.6e6;
  print_row(out);
  return out;
}

EngineRun run_scenario_config(const char* name,
                              const scenario::DailyConfig& config,
                              double hours) {
  EngineRun best = run_scenario_config_once(name, config, hours);
  for (unsigned i = 1; i < g_repeat; ++i) {
    EngineRun next = run_scenario_config_once(name, config, hours);
    if (next.wall_s < best.wall_s) best = next;
  }
  return best;
}

EngineRun run_scenario(const char* name, std::size_t servers, std::size_t vms,
                       double hours) {
  return run_scenario_config(name, bench::scaled_daily_config(servers, vms, hours),
                             hours);
}

// Planet-tier configuration: the compat sampler broadcasts every invitation
// to the whole active fleet, which is O(servers) per deploy and would turn
// these rows into a measurement of that known quadratic — so the planet
// rows run the O(1) sampler with a bounded invite group (DESIGN.md §14).
// Streaming traces replace the materialized VMs x steps matrix with an
// O(VMs) cursor bank; in sharded mode each shard owns the bank of its own
// rows (DESIGN.md §17), so both planet rows stream.
scenario::DailyConfig planet_daily_config(std::size_t servers, std::size_t vms,
                                          double hours, double warmup_hours,
                                          bool streaming) {
  scenario::DailyConfig config = bench::scaled_daily_config(
      servers, vms, hours, warmup_hours * sim::kHour);
  config.params.fast_sampler = true;
  config.params.invite_group_size = 64;
  config.streaming_traces = streaming;
  return config;
}

EngineRun run_sharded_scenario_config_once(const char* name,
                                           const scenario::DailyConfig& config,
                                           double hours, std::size_t shards,
                                           std::size_t threads) {
  EngineRun out;
  out.name = name;
  out.mode = "sharded";
  out.shards = shards;
  out.threads = threads;
  out.servers = config.fleet.num_servers;
  out.vms = config.num_vms;
  out.sim_hours = hours;

  par::ShardedDailyRun run(config, {.shards = shards, .threads = threads});

  std::optional<util::PhaseProfiler> profiler;
  if (g_profile) {
    profiler.emplace(shards + 1);
    run.set_profiler(&*profiler);
  }

  const std::uint64_t allocs_before =
      g_allocation_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  run.run();
  const auto stop = std::chrono::steady_clock::now();
  out.allocations =
      g_allocation_count.load(std::memory_order_relaxed) - allocs_before;

  out.events = run.stats().executed_events;
  out.wall_s = std::chrono::duration<double>(stop - start).count();
  if (profiler) out.profile = profile_result(*profiler, out.wall_s);
  out.events_per_sec =
      out.wall_s > 0.0 ? static_cast<double>(out.events) / out.wall_s : 0.0;
  out.peak_rss_mb = bench::peak_rss_mb();
  out.migrations = run.stats().migrations;
  out.cross_shard_migrations = run.stats().cross_shard_migrations;
  out.energy_kwh = run.total_energy_kwh();
  print_row(out);
  return out;
}

EngineRun run_sharded_scenario_config(const char* name,
                                      const scenario::DailyConfig& config,
                                      double hours, std::size_t shards,
                                      std::size_t threads) {
  EngineRun best =
      run_sharded_scenario_config_once(name, config, hours, shards, threads);
  for (unsigned i = 1; i < g_repeat; ++i) {
    EngineRun next =
        run_sharded_scenario_config_once(name, config, hours, shards, threads);
    if (next.wall_s < best.wall_s) best = next;
  }
  return best;
}

EngineRun run_sharded_scenario(const char* name, std::size_t servers,
                               std::size_t vms, double hours,
                               std::size_t shards, std::size_t threads) {
  return run_sharded_scenario_config(
      name, bench::scaled_daily_config(servers, vms, hours), hours, shards,
      threads);
}

void write_json(const std::string& path, const std::vector<EngineRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_perf_engine: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n  \"benchmark\": \"engine_throughput\",\n"
               "  \"host_hardware_threads\": %u,\n"
               "  \"host_cpu_model\": \"%s\",\n"
               "  \"monitor_kernel\": \"%s\",\n"
               "  \"repeat\": %u,\n  \"runs\": [\n",
               std::thread::hardware_concurrency(), host_cpu_model().c_str(),
               dc::monitor_kernel_name(), g_repeat);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const EngineRun& r = runs[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"mode\": \"%s\",\n"
                 "      \"shards\": %zu,\n"
                 "      \"threads\": %zu,\n"
                 "      \"servers\": %zu,\n"
                 "      \"vms\": %zu,\n"
                 "      \"sim_hours\": %.1f,\n"
                 "      \"events\": %llu,\n"
                 "      \"wall_seconds\": %.3f,\n"
                 "      \"events_per_sec\": %.1f,\n"
                 "      \"peak_rss_mb\": %.1f,\n"
                 "      \"allocations\": %llu,\n"
                 "      \"allocations_per_event\": %.4f,\n"
                 "      \"migrations\": %llu,\n"
                 "      \"cross_shard_migrations\": %llu,\n"
                 "      \"energy_kwh\": %.3f%s\n",
                 r.name.c_str(), r.mode.c_str(), r.shards, r.threads,
                 r.servers, r.vms, r.sim_hours,
                 static_cast<unsigned long long>(r.events), r.wall_s,
                 r.events_per_sec, r.peak_rss_mb,
                 static_cast<unsigned long long>(r.allocations),
                 r.events > 0
                     ? static_cast<double>(r.allocations) /
                           static_cast<double>(r.events)
                     : 0.0,
                 static_cast<unsigned long long>(r.migrations),
                 static_cast<unsigned long long>(r.cross_shard_migrations),
                 r.energy_kwh, r.profile.enabled ? "," : "");
    if (r.profile.enabled) {
      std::fprintf(f,
                   "      \"profile\": {\n"
                   "        \"overhead_ratio\": %.6f,\n"
                   "        \"phases\": {\n",
                   r.profile.overhead_ratio);
      for (std::size_t p = 0; p < util::kNumPhases; ++p) {
        std::fprintf(
            f, "          \"%s\": {\"seconds\": %.6f, \"calls\": %llu}%s\n",
            util::to_string(static_cast<util::Phase>(p)),
            r.profile.phase_seconds[p],
            static_cast<unsigned long long>(r.profile.phase_calls[p]),
            p + 1 < util::kNumPhases ? "," : "");
      }
      std::fprintf(f, "        }\n      }\n");
    }
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

std::vector<std::size_t> parse_size_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    out.push_back(static_cast<std::size_t>(std::strtoull(tok.c_str(),
                                                         nullptr, 10)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  std::string which = "all";
  std::size_t shards = 8;
  std::vector<std::size_t> thread_counts = {1, 2, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--scenario" && i + 1 < argc) {
      which = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::size_t>(
          std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--threads" && i + 1 < argc) {
      thread_counts = parse_size_list(argv[++i]);
    } else if (arg == "--profile") {
      g_profile = true;
    } else if (arg == "--repeat" && i + 1 < argc) {
      g_repeat = static_cast<unsigned>(
          std::strtoul(argv[++i], nullptr, 10));
      if (g_repeat == 0) g_repeat = 1;
    } else if (arg == "--series-only") {
      // Accepted for CI uniformity with the other benches: the series *is*
      // the measurement here, so there is nothing to skip.
    } else {
      std::fprintf(
          stderr,
          "usage: bench_perf_engine "
          "[--scenario paper|scaleup|sharded|scaleup16k|planet100k|"
          "planet1m|ci|all]\n"
          "                         [--shards K] [--threads N1,N2,...] "
          "[--profile] [--repeat N] [--out PATH]\n");
      return 2;
    }
  }
  if (shards == 0 || thread_counts.empty()) {
    std::fprintf(stderr,
                 "bench_perf_engine: --shards and --threads need values >= 1\n");
    return 2;
  }

  bench::banner("Engine", "simulation-engine throughput (events/sec)");
  std::printf("# host hardware threads: %u (sharded wall times only show "
              "scaling when this exceeds the thread count)\n",
              std::thread::hardware_concurrency());
  std::printf("scenario,mode,shards,threads,servers,vms,sim_hours,events,"
              "wall_s,events_per_sec,peak_rss_mb,allocations\n");

  std::vector<EngineRun> runs;
  if (which == "paper" || which == "all") {
    runs.push_back(run_scenario("paper", 400, 6000, 48.0));
  }
  if (which == "scaleup" || which == "all") {
    runs.push_back(run_scenario("scaleup_4000", 4000, 60000, 48.0));
  }
  if (which == "sharded" || which == "all") {
    // Thread matrix at fixed K: same work split, different worker counts —
    // the outputs are bit-identical by construction; only wall time moves.
    for (const std::size_t t : thread_counts) {
      runs.push_back(run_sharded_scenario("scaleup_4000", 4000, 60000, 48.0,
                                          shards, t));
    }
  }
  if (which == "scaleup16k" || which == "all") {
    runs.push_back(run_scenario("scaleup_16000", 16000, 240000, 48.0));
    runs.push_back(run_sharded_scenario("scaleup_16000", 16000, 240000, 48.0,
                                        shards, thread_counts.back()));
  }
  if (which == "planet100k" || which == "all") {
    // 100,000 servers / 1.5M VMs, 3 reported hours after a 1 h warm-up.
    runs.push_back(run_scenario_config(
        "planet_100k",
        planet_daily_config(100'000, 1'500'000, 3.0, 1.0, /*streaming=*/true),
        3.0));
    runs.push_back(run_sharded_scenario_config(
        "planet_100k",
        planet_daily_config(100'000, 1'500'000, 3.0, 1.0, /*streaming=*/true),
        3.0, shards, thread_counts.back()));
  }
  if (which == "planet1m" || which == "all") {
    // 1,000,000 servers / 15M VMs, streaming only: a materialized trace
    // matrix at this scale is tens of GB, the cursor bank ~1.1 GB.
    runs.push_back(run_scenario_config(
        "planet_1m",
        planet_daily_config(1'000'000, 15'000'000, 0.5, 0.0,
                            /*streaming=*/true),
        0.5));
  }
  if (which == "ci") {
    runs.push_back(run_scenario("ci_smoke", 100, 1500, 6.0));
    runs.push_back(
        run_sharded_scenario("ci_smoke", 100, 1500, 6.0, 4, 2));
  }
  if (runs.empty()) {
    std::fprintf(stderr, "bench_perf_engine: unknown scenario '%s'\n",
                 which.c_str());
    return 2;
  }
  write_json(out_path, runs);
  return 0;
}
