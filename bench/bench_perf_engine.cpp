// Engine-throughput benchmark: how many simulator events per second the
// ecoCloud engine sustains on trace-driven daily scenarios. Unlike the
// figure benches this one measures the *simulation engine itself* — the
// event calendar, the per-state server indices, the controller hot path —
// so the numbers are tracked across PRs via BENCH_engine.json.
//
// Scenarios:
//   paper    — the paper's Sec. III experiment: 400 servers / 6,000 VMs /
//              48 h (+ 6 h warm-up).
//   scaleup  — 10x the paper: 4,000 servers / 60,000 VMs / 48 h, where any
//              O(num_servers) cost on the per-event path dominates.
//   ci       — reduced smoke: 100 servers / 1,500 VMs / 6 h (CI runners).
//
// Output: one JSON object per scenario (events, wall seconds, events/sec,
// peak RSS, heap allocations) written to --out (default BENCH_engine.json).
// CI fails on crash or malformed JSON only — never on wall time.

#include "bench_common.hpp"

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

// Heap-allocation counter: the engine claims "no allocation per event", so
// the bench counts global operator new calls around each run. Replacing
// operator new is binary-wide, which is exactly the scope we want here.
namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace ecocloud;

struct EngineRun {
  std::string name;
  std::size_t servers = 0;
  std::size_t vms = 0;
  double sim_hours = 0.0;  // reported horizon, warm-up excluded
  std::uint64_t events = 0;
  double wall_s = 0.0;
  double events_per_sec = 0.0;
  double peak_rss_mb = 0.0;
  std::uint64_t allocations = 0;
  std::uint64_t migrations = 0;
  double energy_kwh = 0.0;
};

double peak_rss_mb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

EngineRun run_scenario(const char* name, std::size_t servers, std::size_t vms,
                       double hours) {
  EngineRun out;
  out.name = name;
  out.servers = servers;
  out.vms = vms;
  out.sim_hours = hours;

  scenario::DailyConfig config = bench::scaled_daily_config(servers, vms, hours);
  scenario::DailyScenario daily(config);

  const std::uint64_t allocs_before =
      g_allocation_count.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  daily.run();
  const auto stop = std::chrono::steady_clock::now();
  out.allocations =
      g_allocation_count.load(std::memory_order_relaxed) - allocs_before;

  out.events = daily.simulator().executed_events();
  out.wall_s = std::chrono::duration<double>(stop - start).count();
  out.events_per_sec =
      out.wall_s > 0.0 ? static_cast<double>(out.events) / out.wall_s : 0.0;
  out.peak_rss_mb = peak_rss_mb();
  out.migrations = daily.datacenter().total_migrations();
  out.energy_kwh = daily.datacenter().energy_joules() / 3.6e6;
  std::printf("%s,%zu,%zu,%.0f,%llu,%.3f,%.0f,%.1f,%llu\n", name, servers, vms,
              hours, static_cast<unsigned long long>(out.events), out.wall_s,
              out.events_per_sec, out.peak_rss_mb,
              static_cast<unsigned long long>(out.allocations));
  return out;
}

void write_json(const std::string& path, const std::vector<EngineRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_perf_engine: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"engine_throughput\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const EngineRun& r = runs[i];
    std::fprintf(f,
                 "    {\n"
                 "      \"name\": \"%s\",\n"
                 "      \"servers\": %zu,\n"
                 "      \"vms\": %zu,\n"
                 "      \"sim_hours\": %.1f,\n"
                 "      \"events\": %llu,\n"
                 "      \"wall_seconds\": %.3f,\n"
                 "      \"events_per_sec\": %.1f,\n"
                 "      \"peak_rss_mb\": %.1f,\n"
                 "      \"allocations\": %llu,\n"
                 "      \"allocations_per_event\": %.4f,\n"
                 "      \"migrations\": %llu,\n"
                 "      \"energy_kwh\": %.3f\n"
                 "    }%s\n",
                 r.name.c_str(), r.servers, r.vms, r.sim_hours,
                 static_cast<unsigned long long>(r.events), r.wall_s,
                 r.events_per_sec, r.peak_rss_mb,
                 static_cast<unsigned long long>(r.allocations),
                 r.events > 0
                     ? static_cast<double>(r.allocations) /
                           static_cast<double>(r.events)
                     : 0.0,
                 static_cast<unsigned long long>(r.migrations), r.energy_kwh,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  std::string which = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--scenario" && i + 1 < argc) {
      which = argv[++i];
    } else if (arg == "--series-only") {
      // Accepted for CI uniformity with the other benches: the series *is*
      // the measurement here, so there is nothing to skip.
    } else {
      std::fprintf(stderr,
                   "usage: bench_perf_engine [--scenario paper|scaleup|ci|all] "
                   "[--out PATH]\n");
      return 2;
    }
  }

  bench::banner("Engine", "simulation-engine throughput (events/sec)");
  std::printf("scenario,servers,vms,sim_hours,events,wall_s,events_per_sec,"
              "peak_rss_mb,allocations\n");

  std::vector<EngineRun> runs;
  if (which == "paper" || which == "all") {
    runs.push_back(run_scenario("paper", 400, 6000, 48.0));
  }
  if (which == "scaleup" || which == "all") {
    runs.push_back(run_scenario("scaleup_4000", 4000, 60000, 48.0));
  }
  if (which == "ci") {
    runs.push_back(run_scenario("ci_smoke", 100, 1500, 6.0));
  }
  if (runs.empty()) {
    std::fprintf(stderr, "bench_perf_engine: unknown scenario '%s'\n",
                 which.c_str());
    return 2;
  }
  write_json(out_path, runs);
  return 0;
}
