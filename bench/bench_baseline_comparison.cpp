// Comparison (paper Secs. I & V): ecoCloud's efficiency is "very close to
// the theoretical minimum and comparable to that of one of the best
// centralized algorithms devised so far" (Beloglazov & Buyya's MBFD+MM),
// while needing far fewer simultaneous migrations. Runs the same 48-hour
// workload under ecoCloud and the centralized policies and reports energy,
// migrations, switches and QoS side by side.

#include <cmath>

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

scenario::DailyConfig comparison_config() {
  scenario::DailyConfig config = bench::scaled_daily_config(200, 3000, 24.0);
  config.seed = 424242;  // identical workload for every contender
  return config;
}

/// Theoretical floor: every 30 minutes, the least energy any policy could
/// draw is ceil(load / Ta) of the most efficient servers running at Ta.
double theoretical_minimum_kwh(scenario::DailyScenario& daily) {
  const auto& d = daily.datacenter();
  const dc::PowerModel& pm = d.power_model();
  // The fleet is uniform in W/MHz here; use the 8-core class (best W/MHz).
  const double per_server_capacity = 8.0 * 2000.0;
  const double per_server_power = pm.active_power_w(8, daily.config().params.ta);
  double joules = 0.0;
  for (const auto& s : daily.collector().samples()) {
    if (!bench::in_report_window(s.time)) continue;
    const double demand = s.overall_load * d.total_capacity_mhz();
    const double servers_needed =
        std::ceil(demand / (daily.config().params.ta * per_server_capacity));
    joules += servers_needed * per_server_power * 1800.0;
  }
  return joules / 3.6e6;
}

void run_contender(const char* name, scenario::Algorithm algorithm,
                   baseline::PlacementPolicy policy) {
  baseline::CentralizedParams central;
  central.policy = policy;
  scenario::DailyScenario daily(comparison_config(), algorithm, central);
  daily.run();
  const auto s = bench::summarize_daily(daily);
  std::printf("%s,%.1f,%.1f,%llu,%llu,%zu,%.4f\n", name, s.energy_kwh,
              s.mean_active, static_cast<unsigned long long>(s.migrations),
              static_cast<unsigned long long>(s.switches), s.max_inflight,
              s.overload_percent);
}

void emit_series() {
  bench::banner("Comparison", "ecoCloud vs centralized policies, same workload");
  std::printf(
      "policy,energy_kwh,mean_active,migrations,switches,max_simultaneous_"
      "migrations,overload_pct\n");
  run_contender("ecoCloud", scenario::Algorithm::kEcoCloud,
                baseline::PlacementPolicy::kBestFitDecreasing);
  run_contender("MBFD+MM", scenario::Algorithm::kCentralized,
                baseline::PlacementPolicy::kBestFitDecreasing);
  run_contender("FFD", scenario::Algorithm::kCentralized,
                baseline::PlacementPolicy::kFirstFitDecreasing);
  run_contender("RandomFit", scenario::Algorithm::kCentralized,
                baseline::PlacementPolicy::kRandomFit);

  scenario::DailyScenario reference(comparison_config());
  reference.run();
  std::printf("# theoretical minimum (load/Ta best-servers bound): %.1f kWh\n",
              theoretical_minimum_kwh(reference));
  std::printf(
      "# expected shape: ecoCloud energy comparable to MBFD+MM and both near "
      "the bound; centralized policies migrate more, in simultaneous bursts "
      "(max_simultaneous), with worse overload — ecoCloud relocates "
      "gradually (Sec. V)\n");
}

void BM_CentralizedReoptimizePass(benchmark::State& state) {
  sim::Simulator simulator;
  util::Rng rng(9);
  dc::DataCenter d = bench::make_loaded_fleet(
      200, [&rng](std::size_t) { return rng.uniform(0.1, 0.9) * 12000.0; });
  baseline::CentralizedParams params;
  baseline::CentralizedController controller(simulator, d, params, util::Rng(10));
  for (auto _ : state) {
    controller.reoptimize();
  }
}
BENCHMARK(BM_CentralizedReoptimizePass)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
