// Figure 5: distribution of the deviation between punctual and average CPU
// utilization of the same VM (paper Sec. III: ~94% of deviations < 10
// percentage points).

#include "bench_common.hpp"

#include "ecocloud/stats/histogram.hpp"
#include "ecocloud/trace/trace_set.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 5", "distribution of punctual-minus-average CPU deviation");
  trace::WorkloadModel model;
  util::Rng rng(20130521);
  // 48 hours of 5-minute samples for 2,000 VMs is plenty for the marginal.
  const std::size_t steps = 576;
  stats::Histogram hist(-40.0, 40.0, 32);  // 2.5-point bins as in the figure
  double within10 = 0.0, total = 0.0;
  for (int vm = 0; vm < 2000; ++vm) {
    const double avg = model.sample_average_percent(rng);
    const auto series = model.generate_series(rng, avg, steps);
    for (float x : series) {
      const double deviation = static_cast<double>(x) - avg;
      hist.add(deviation);
      total += 1.0;
      if (deviation > -10.0 && deviation < 10.0) within10 += 1.0;
    }
  }
  std::printf("deviation_bin_center,freq\n");
  for (std::size_t i = 0; i < hist.num_bins(); ++i) {
    std::printf("%.2f,%.5f\n", hist.bin_center(i), hist.frequency(i));
  }
  std::printf("# within +-10 points: %.1f%% (paper: ~94%%)\n",
              100.0 * within10 / total);
}

void BM_GenerateSeries48h(benchmark::State& state) {
  trace::WorkloadModel model;
  util::Rng rng(3);
  for (auto _ : state) {
    auto series = model.generate_series(rng, 15.0, 576);
    benchmark::DoNotOptimize(series.data());
  }
}
BENCHMARK(BM_GenerateSeries48h);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
