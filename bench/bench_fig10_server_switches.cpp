// Figure 10: number of server switches (activations and hibernations) per
// hour. Switches happen only when needed: activations in ascending load
// phases, hibernations in descending phases.

#include <algorithm>

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 10", "server activations/hibernations per hour over 48 h");
  scenario::DailyScenario daily(bench::paper_daily_config());
  daily.run();

  const auto& collector = daily.collector();
  std::printf("hour,activations_per_hour,hibernations_per_hour,overall_load\n");
  double max_rate = 0.0;
  double mixed_windows = 0.0, switch_windows = 0.0;
  for (const auto& s : collector.samples()) {
    if (!bench::in_report_window(s.time)) continue;
    const auto w = static_cast<std::size_t>(s.time / collector.sample_period_s()) - 1;
    const double act = collector.activations().hourly_rate(w);
    const double hib = collector.hibernations().hourly_rate(w);
    std::printf("%.1f,%.0f,%.0f,%.4f\n", bench::report_hour(s.time), act, hib,
                s.overall_load);
    max_rate = std::max(max_rate, std::max(act, hib));
    if (act > 0.0 || hib > 0.0) {
      switch_windows += 1.0;
      if (act > 0.0 && hib > 0.0) mixed_windows += 1.0;
    }
  }
  std::printf(
      "# peak rate: %.0f/h; windows with both kinds: %.0f%% (paper: phases "
      "are one-sided, peak <~10/h)\n",
      max_rate, switch_windows > 0 ? 100.0 * mixed_windows / switch_windows : 0.0);
}

void BM_WakeHibernateCycle(benchmark::State& state) {
  dc::DataCenter d;
  const auto s = d.add_server(6, 2000.0);
  double t = 0.0;
  for (auto _ : state) {
    d.start_booting(t, s);
    d.finish_booting(t, s);
    d.hibernate(t, s);
    t += 1.0;
  }
}
BENCHMARK(BM_WakeHibernateCycle);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
