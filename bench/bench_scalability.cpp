// Paper Secs. I & V: ecoCloud "is naturally scalable, thanks to its
// probabilistic nature", while "deterministic and centralized algorithms'
// efficiency deteriorates as the size of the data center grows". Measure
// the per-decision cost of each approach as the fleet grows. The point is
// not that one invitation round is cheap (it is O(N) for the manager) but
// that each *server's* work is O(1) and a centralized reoptimization pass
// is O(N^2)-ish and must touch global state.

#include "bench_common.hpp"

#include "ecocloud/baseline/centralized_controller.hpp"

using namespace ecocloud;

namespace {

dc::DataCenter make_fleet(std::size_t n) {
  util::Rng rng(31);
  return bench::make_loaded_fleet(
      n, [&rng](std::size_t) { return rng.uniform(0.3, 0.85) * 12000.0; });
}

void emit_series() {
  bench::banner("Scalability", "per-decision cost vs fleet size");
  std::printf(
      "# measured below by google-benchmark: ecoCloud invitation round "
      "(manager O(N), per-server O(1)), single server Bernoulli answer "
      "(O(1)), MBFD placement scan (O(N)), centralized reoptimization pass "
      "(O(N) scans + O(N) placements)\n");
  std::printf(
      "# with invite_group_size=G (footnote 1), the invitation round is "
      "O(G) regardless of N\n");
}

void BM_EcoCloudInvitationRound(benchmark::State& state) {
  auto d = make_fleet(static_cast<std::size_t>(state.range(0)));
  core::EcoCloudParams params;
  util::Rng rng(1);
  core::AssignmentProcedure proc(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.invite(d, 0.0, 300.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EcoCloudInvitationRound)
    ->Arg(100)->Arg(400)->Arg(1000)->Arg(4000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond)->Complexity(benchmark::oN);

void BM_EcoCloudInvitationRoundGrouped(benchmark::State& state) {
  auto d = make_fleet(static_cast<std::size_t>(state.range(0)));
  core::EcoCloudParams params;
  params.invite_group_size = 64;  // footnote-1 group broadcast
  util::Rng rng(1);
  core::AssignmentProcedure proc(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.invite(d, 0.0, 300.0));
  }
}
BENCHMARK(BM_EcoCloudInvitationRoundGrouped)
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_SingleServerAnswer(benchmark::State& state) {
  auto d = make_fleet(4);
  core::EcoCloudParams params;
  util::Rng rng(2);
  core::AssignmentProcedure proc(params, rng);
  const core::AssignmentFunction fa(params.ta, params.p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.server_accepts(d.server(0), 0.0, 300.0, 0.0, fa));
  }
}
BENCHMARK(BM_SingleServerAnswer);

void BM_MbfdPlacement(benchmark::State& state) {
  auto d = make_fleet(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::choose_server(
        d, 300.0, 0.9, baseline::PlacementPolicy::kBestFitDecreasing));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MbfdPlacement)
    ->Arg(100)->Arg(400)->Arg(1000)->Arg(4000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond)->Complexity(benchmark::oN);

void BM_CentralizedReoptimize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator simulator;
  auto d = make_fleet(n);
  baseline::CentralizedParams params;
  baseline::CentralizedController controller(simulator, d, params, util::Rng(3));
  for (auto _ : state) {
    controller.reoptimize();
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CentralizedReoptimize)
    ->Arg(100)->Arg(400)->Arg(1000)->Arg(4000)
    ->Unit(benchmark::kMicrosecond)->Complexity(benchmark::oNSquared);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
