// Ablation (paper Sec. III sensitivity discussion): Th must exceed Ta or
// migrations prevent the CPU from being exploited up to Ta; Tl should keep
// servers from idling under ~40-50%. Sweep both thresholds.

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

scenario::DailyConfig sweep_config() {
  scenario::DailyConfig config = bench::scaled_daily_config(200, 3000, 24.0);
  return config;
}

void run_point(const char* label, double tl, double th) {
  scenario::DailyConfig config = sweep_config();
  config.params.tl = tl;
  config.params.th = th;
  scenario::DailyScenario daily(config);
  daily.run();
  const auto s = bench::summarize_daily(daily);
  std::printf("%s,%.2f,%.2f,%.1f,%.1f,%llu,%llu,%.4f\n", label, tl, th,
              s.energy_kwh, s.mean_active,
              static_cast<unsigned long long>(s.migrations),
              static_cast<unsigned long long>(s.switches), s.overload_percent);
}

void emit_series() {
  bench::banner("Ablation", "migration thresholds Tl / Th (Sec. III sensitivity)");
  std::printf(
      "sweep,tl,th,energy_kwh,mean_active,migrations,switches,overload_pct\n");
  for (double tl : {0.3, 0.4, 0.5, 0.6}) {
    run_point("tl", tl, 0.95);
  }
  for (double th : {0.92, 0.95, 0.98}) {
    run_point("th", 0.5, th);
  }
  std::printf(
      "# expected: higher Tl drains more aggressively (fewer active, more "
      "migrations); Th close to Ta floods the system with high migrations\n");
}

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
