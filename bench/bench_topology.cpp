// Topology ablation (footnote 1): organizing the fleet into racks and
// broadcasting invitations to a single rack caps the control-plane cost;
// the question is what it costs in consolidation quality. Runs the daily
// workload with no topology (global broadcast) and with 4/8/16 racks.

#include "bench_common.hpp"

#include "ecocloud/net/topology.hpp"

using namespace ecocloud;

namespace {

void run_point(std::size_t racks) {
  scenario::DailyConfig config = bench::scaled_daily_config(200, 3000, 24.0);
  if (racks > 0) {
    net::TopologyConfig topology;
    topology.num_racks = racks;
    config.topology = topology;
  }
  scenario::DailyScenario daily(config);
  daily.run();
  const auto s = bench::summarize_daily(daily);
  const core::MessageLog& messages = daily.ecocloud()->messages();
  const double per_round =
      messages.invitation_rounds
          ? static_cast<double>(messages.invitations_sent) /
                static_cast<double>(messages.invitation_rounds)
          : 0.0;
  std::printf("%zu,%.1f,%.1f,%.1f,%llu,%llu,%.4f\n", racks, per_round,
              s.energy_kwh, s.mean_active,
              static_cast<unsigned long long>(s.migrations),
              static_cast<unsigned long long>(s.switches), s.overload_percent);
}

void emit_series() {
  bench::banner("Topology",
                "global broadcast vs rack-scoped invitations (footnote 1)");
  std::printf(
      "racks,invitations_per_round,energy_kwh,mean_active,migrations,"
      "switches,overload_pct\n");
  run_point(0);  // no topology: global broadcast
  for (std::size_t racks : {4u, 8u, 16u}) run_point(racks);
  std::printf(
      "# expected: invitations/round drop to N/racks while energy stays "
      "within a few %% — rack-local volunteers almost always exist; more "
      "racks -> slightly more wake-ups (a rack can be locally full)\n");
}

void BM_TopologyLookups(benchmark::State& state) {
  net::TopologyConfig config;
  config.num_racks = 16;
  net::Topology topology(10000, config);
  dc::ServerId s = 0;
  for (auto _ : state) {
    s = (s + 7919) % 10000;
    benchmark::DoNotOptimize(topology.rack_of(s));
    benchmark::DoNotOptimize(topology.transfer_time_s(s, (s * 31) % 10000, 2048.0));
  }
}
BENCHMARK(BM_TopologyLookups);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
