// Energy saving vs availability under fault injection (src/faults).
//
// The paper evaluates ecoCloud in a failure-free data center. This bench
// quantifies how much of the consolidation benefit survives realistic
// imperfections: a crash MTBF sweep (fail-stop servers, exponential
// repair), then a control-plane loss sweep. Energy saving is measured
// against the static no-consolidation fleet; availability integrates the
// crash-induced VM downtime against served VM-time.

#include "bench_common.hpp"

#include "ecocloud/faults/fault_model.hpp"

using namespace ecocloud;

namespace {

// No warm-up here: the resilience statistics cannot be rebased mid-run,
// so the availability figure must cover the same window as the energy
// accounting.
scenario::DailyConfig sweep_config() {
  scenario::DailyConfig config = bench::scaled_daily_config(150, 2250, 24.0, 0.0);
  return config;
}

double static_energy_kwh() {
  scenario::DailyScenario daily(sweep_config(), scenario::Algorithm::kStatic);
  daily.run();
  return daily.datacenter().energy_joules() / 3.6e6;
}

void run_point(const char* knob, double value, scenario::DailyConfig config,
               double static_kwh) {
  scenario::DailyScenario daily(config);
  daily.run();
  const auto& d = daily.datacenter();
  const double energy_kwh = d.energy_joules() / 3.6e6;
  const double saving_pct = 100.0 * (1.0 - energy_kwh / static_kwh);

  double availability = 1.0;
  unsigned long long crashes = 0, orphans = 0, redeployed = 0, abandoned = 0;
  double downtime_min = 0.0, p50_redeploy_s = 0.0;
  if (const auto* injector = daily.fault_injector()) {
    const auto& r = injector->stats();
    availability = injector->availability();
    crashes = r.crashes();
    orphans = r.orphaned_vms();
    redeployed = r.redeployed_vms();
    abandoned = r.abandoned_vms();
    downtime_min = r.downtime_vm_seconds() / 60.0;
    if (r.redeployed_vms() > 0) {
      p50_redeploy_s = r.redeploy_quantiles().quantile(0.5);
    }
  }
  std::printf("%s,%g,%.1f,%.2f,%.6f,%llu,%llu,%llu,%llu,%.1f,%.1f,%llu,%llu\n",
              knob, value, energy_kwh, saving_pct, 100.0 * availability, crashes,
              orphans, redeployed, abandoned, downtime_min, p50_redeploy_s,
              static_cast<unsigned long long>(
                  daily.ecocloud()->interrupted_migrations() +
                  daily.ecocloud()->aborted_migrations()),
              static_cast<unsigned long long>(
                  daily.ecocloud()->messages().invitations_lost +
                  daily.ecocloud()->messages().replies_lost));
}

void emit_series() {
  bench::banner("Fault tolerance",
                "energy saving vs availability under injected failures");
  const double static_kwh = static_energy_kwh();
  std::printf("# static (no consolidation) reference: %.1f kWh\n", static_kwh);
  std::printf(
      "knob,value,energy_kwh,saving_pct,availability_pct,crashes,orphans,"
      "redeployed,abandoned,downtime_vm_min,p50_redeploy_s,"
      "rolled_back_migrations,messages_lost\n");

  // Fault-free reference row.
  run_point("server_mtbf_hours", 0.0, sweep_config(), static_kwh);

  // Crash sweep: per-server MTBF from one week down to six hours.
  for (double mtbf_hours : {168.0, 72.0, 24.0, 12.0, 6.0}) {
    auto config = sweep_config();
    config.faults.server_mtbf_s = mtbf_hours * sim::kHour;
    config.faults.server_mttr_s = 900.0;
    run_point("server_mtbf_hours", mtbf_hours, config, static_kwh);
  }

  // Lossy control plane (invitations and replies dropped alike).
  for (double loss : {0.01, 0.05, 0.1, 0.25}) {
    auto config = sweep_config();
    config.faults.invitation_loss_prob = loss;
    config.faults.reply_loss_prob = loss;
    run_point("message_loss_prob", loss, config, static_kwh);
  }

  // Flaky infrastructure: boot hangs and migration aborts together.
  for (double prob : {0.05, 0.15, 0.3}) {
    auto config = sweep_config();
    config.faults.boot_failure_prob = prob;
    config.faults.migration_abort_prob = prob;
    run_point("boot_and_abort_prob", prob, config, static_kwh);
  }

  std::printf(
      "# expected: the energy saving degrades gracefully (crashed servers "
      "draw nothing, so energy can even dip) while availability stays high "
      "until MTBF approaches the repair+redeploy timescale; message loss "
      "costs extra traffic and wake-ups, not availability\n");
}

void BM_FaultModelSampling(benchmark::State& state) {
  faults::FaultParams params;
  params.server_mtbf_s = 24.0 * 3600.0;
  params.migration_abort_prob = 0.1;
  faults::FaultModel model(params, util::Rng(42));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.time_to_failure());
    benchmark::DoNotOptimize(model.repair_time());
    benchmark::DoNotOptimize(model.migration_aborts());
  }
}
BENCHMARK(BM_FaultModelSampling);

void BM_DailyRunWithCrashes(benchmark::State& state) {
  for (auto _ : state) {
    scenario::DailyConfig config = bench::scaled_daily_config(60, 900, 6.0, 0.0);
    config.faults.server_mtbf_s = static_cast<double>(state.range(0)) * 3600.0;
    config.faults.server_mttr_s = 600.0;
    scenario::DailyScenario daily(config);
    daily.run();
    benchmark::DoNotOptimize(daily.datacenter().energy_joules());
  }
}
BENCHMARK(BM_DailyRunWithCrashes)->Arg(24)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
