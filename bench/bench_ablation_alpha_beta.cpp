// Ablation (paper Sec. III): alpha and beta modulate the eagerness of the
// migration Bernoulli trials — "tuned depending on the willingness to
// accept that a server is under- or over-utilized for a short interval".

#include "bench_common.hpp"

#include "ecocloud/metrics/episode_summary.hpp"

using namespace ecocloud;

namespace {

scenario::DailyConfig sweep_config() {
  scenario::DailyConfig config = bench::scaled_daily_config(200, 3000, 24.0);
  return config;
}

void emit_series() {
  bench::banner("Ablation", "migration shapes alpha/beta (Sec. III)");
  std::printf(
      "alpha_beta,energy_kwh,mean_active,migrations,switches,overload_pct,"
      "violations_under_30s_pct\n");
  for (double shape : {0.1, 0.25, 0.5, 1.0, 2.0}) {
    scenario::DailyConfig config = sweep_config();
    config.params.alpha = shape;
    config.params.beta = shape;
    scenario::DailyScenario daily(config);
    daily.run();
    const auto s = bench::summarize_daily(daily);
    const auto eps =
        ecocloud::metrics::summarize_episodes(daily.datacenter().overload_episodes());
    std::printf("%.2f,%.1f,%.1f,%llu,%llu,%.4f,%.1f\n", shape, s.energy_kwh,
                s.mean_active, static_cast<unsigned long long>(s.migrations),
                static_cast<unsigned long long>(s.switches), s.overload_percent,
                100.0 * eps.fraction_under_30s);
  }
  std::printf(
      "# expected: small alpha/beta fire trials eagerly -> faster overload "
      "relief (short violations) but more migrations\n");
}

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
