// Control-plane overhead (paper Fig. 1 / footnote 1): invitations can be
// broadcast to all active servers or to a random group of them in very
// large data centers. Measure the message traffic of a daily run as a
// function of the invitation group size: the consolidation quality must
// hold while the per-decision message count drops from O(N) to O(G).

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

void run_point(std::size_t group_size) {
  scenario::DailyConfig config = bench::scaled_daily_config(200, 3000, 24.0);
  config.params.invite_group_size = group_size;
  scenario::DailyScenario daily(config);
  daily.run();
  const auto s = bench::summarize_daily(daily);
  const core::MessageLog& messages = daily.ecocloud()->messages();
  const double hours = 24.0;
  std::printf("%zu,%.0f,%.1f,%.1f,%.1f,%.1f,%.4f\n",
              group_size,
              static_cast<double>(messages.invitation_rounds) / hours,
              static_cast<double>(messages.invitations_sent) / hours,
              static_cast<double>(messages.volunteer_replies) / hours,
              static_cast<double>(messages.total()) / hours,
              s.energy_kwh, s.overload_percent);
}

void emit_series() {
  bench::banner("Control plane",
                "message traffic vs invitation group size (footnote 1)");
  std::printf(
      "invite_group_size,rounds_per_hour,invitations_per_hour,"
      "replies_per_hour,total_messages_per_hour,energy_kwh,overload_pct\n");
  run_point(0);  // broadcast to all active servers
  for (std::size_t g : {16u, 32u, 64u, 128u}) run_point(g);
  std::printf(
      "# expected: invitations/hour drop roughly as G/N_active while energy "
      "and overload stay flat — the basis of the scalability claim\n");
}

void BM_InvitationRoundBroadcastVsGroup(benchmark::State& state) {
  dc::DataCenter d = bench::make_loaded_fleet(
      2000, [](std::size_t) { return 0.6 * 12000.0; });
  core::EcoCloudParams params;
  params.invite_group_size = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  core::AssignmentProcedure proc(params, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proc.invite(d, 0.0, 300.0));
  }
}
BENCHMARK(BM_InvitationRoundBroadcastVsGroup)
    ->Arg(0)->Arg(16)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
