// Figure 11: fraction of time (in percent) during which the CPU demanded
// by a VM cannot be fully granted because of an overload event. The paper
// reports it never above 0.02%, with >98% of violations shorter than 30 s
// and >=98% of the demanded CPU granted even during violations.

#include <algorithm>

#include "bench_common.hpp"

#include "ecocloud/metrics/episode_summary.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 11", "% of VM-time under CPU over-demand over 48 h");
  scenario::DailyScenario daily(bench::paper_daily_config());
  daily.run();

  std::printf("hour,overload_percent\n");
  double worst = 0.0;
  for (const auto& s : daily.collector().samples()) {
    if (!bench::in_report_window(s.time)) continue;
    std::printf("%.1f,%.5f\n", bench::report_hour(s.time), s.overload_percent);
    worst = std::max(worst, s.overload_percent);
  }

  const auto summary =
      metrics::summarize_episodes(daily.datacenter().overload_episodes());
  std::printf("# worst window: %.4f%% (paper: <= ~0.02%%)\n", worst);
  std::printf(
      "# violations: n=%zu, under-30s=%.1f%% (paper >98%%), mean granted "
      "during violations=%.1f%%, worst granted=%.1f%% (paper >=98%%)\n",
      summary.count, 100.0 * summary.fraction_under_30s,
      100.0 * summary.mean_min_granted_fraction,
      100.0 * summary.worst_granted_fraction);

  // Per-VM reading of the same metric: the distribution across VMs of the
  // lifetime fraction spent shortchanged (exact per-VM attribution).
  const auto& d = daily.datacenter();
  const double lifetime = daily.config().horizon_s;
  double worst_vm = 0.0;
  std::size_t affected = 0;
  for (std::size_t v = 0; v < d.num_vms(); ++v) {
    const double share =
        d.vm_overload_seconds(static_cast<dc::VmId>(v), lifetime) / lifetime;
    worst_vm = std::max(worst_vm, share);
    if (share > 0.0) ++affected;
  }
  std::printf(
      "# per-VM: %zu of %zu VMs ever shortchanged; worst single VM spent "
      "%.4f%% of its lifetime under over-demand\n",
      affected, d.num_vms(), 100.0 * worst_vm);
}

void BM_OverloadAccounting(benchmark::State& state) {
  dc::DataCenter d;
  const auto s = d.add_server(2, 1000.0);
  d.start_booting(0.0, s);
  d.finish_booting(0.0, s);
  const auto v = d.create_vm(1500.0);
  d.place_vm(0.0, v, s);
  double t = 0.0;
  bool high = false;
  for (auto _ : state) {
    t += 1.0;
    // Flip in and out of overload: exercises episode tracking.
    d.set_vm_demand(t, v, high ? 1500.0 : 2500.0);
    high = !high;
  }
  benchmark::DoNotOptimize(d.overload_episodes().size());
}
BENCHMARK(BM_OverloadAccounting);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
