// Replicated comparison: the paper's headline claim ("efficiency
// comparable to one of the best centralized algorithms, far fewer
// disruptive events") re-evaluated with statistical error bars — five
// independent seeds per policy, 95% Student-t confidence intervals.

#include "bench_common.hpp"

#include "ecocloud/scenario/replication.hpp"

using namespace ecocloud;

namespace {

scenario::DailyConfig base_config() {
  scenario::DailyConfig config = bench::scaled_daily_config(120, 1800, 24.0);
  config.seed = 77000;
  return config;
}

void print_row(const char* name, const scenario::ReplicatedMetrics& m) {
  std::printf("%s,%.1f,%.1f,%.1f,%.1f,%.0f,%.0f,%.4f,%.4f\n", name,
              m.energy_kwh.mean, m.energy_kwh.half_width,
              m.mean_active_servers.mean, m.mean_active_servers.half_width,
              m.migrations.mean, m.migrations.half_width,
              m.overload_percent.mean, m.overload_percent.half_width);
}

void emit_series() {
  bench::banner("Replication",
                "policy comparison with 95% CIs over 5 seeds");
  std::printf(
      "policy,energy_kwh,energy_ci,mean_active,active_ci,migrations,"
      "migrations_ci,overload_pct,overload_ci\n");
  constexpr std::size_t kReplications = 5;
  util::ThreadPool pool;  // uses all cores when available

  const auto eco = scenario::run_replicated(
      base_config(), scenario::Algorithm::kEcoCloud, kReplications, &pool);
  print_row("ecoCloud", eco);

  baseline::CentralizedParams mbfd;
  const auto central = scenario::run_replicated(
      base_config(), scenario::Algorithm::kCentralized, kReplications, &pool, mbfd);
  print_row("MBFD+MM", central);

  const auto flat = scenario::run_replicated(
      base_config(), scenario::Algorithm::kStatic, kReplications, &pool);
  print_row("static", flat);

  std::printf(
      "# energy eco-vs-central intervals %s; overload eco-vs-central "
      "intervals %s (eco lower)\n",
      eco.energy_kwh.separated_from(central.energy_kwh) ? "separated"
                                                        : "overlapping",
      eco.overload_percent.separated_from(central.overload_percent)
          ? "separated"
          : "overlapping");
  std::printf(
      "# expected: both consolidating policies far below static; eco within "
      "~10-15%% of MBFD on energy with significantly lower overload\n");
}

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
