// Figure 12: CPU utilization of 100 servers under the assignment procedure
// alone (migrations disabled), obtained by simulation. Starting from a
// non-consolidated state (all servers at 10-30%), the system stratifies
// within hours: part of the fleet drains and hibernates, the rest climbs
// toward Ta; from ~8:30 the morning ramp re-activates servers. The paper
// ends with 45 active / 55 hibernated.

#include <algorithm>

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 12", "consolidation transient, simulation (100 servers)");
  scenario::ConsolidationScenario cons{scenario::ConsolidationConfig{}};
  cons.run();

  const auto& samples = cons.collector().samples();
  const auto& snaps = cons.collector().utilization_snapshots();
  std::printf("hour,active,overall_load,u_p10,u_p50,u_p90,population\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    std::vector<double> u;
    for (double x : snaps[i]) {
      if (x > 0.0) u.push_back(x);
    }
    std::sort(u.begin(), u.end());
    const auto q = [&](double p) {
      return u.empty() ? 0.0 : u[static_cast<std::size_t>(p * (u.size() - 1))];
    };
    std::printf("%.2f,%zu,%.4f,%.3f,%.3f,%.3f,%zu\n", s.time / sim::kHour,
                s.active_servers, s.overall_load, q(0.10), q(0.50), q(0.90),
                cons.open_system().population());
  }
  const auto& d = cons.datacenter();
  std::printf(
      "# final: %zu active / %zu hibernated of %zu (paper: 45 / 55); "
      "migrations=%llu (must be 0)\n",
      d.active_server_count(),
      d.num_servers() - d.active_server_count() - d.booting_server_count(),
      d.num_servers(),
      static_cast<unsigned long long>(d.total_migrations()));
}

void BM_ConsolidationRun(benchmark::State& state) {
  for (auto _ : state) {
    scenario::ConsolidationConfig config;
    config.num_servers = 50;
    config.initial_vms = 750;
    config.horizon_s = 6.0 * sim::kHour;
    scenario::ConsolidationScenario cons(config);
    cons.run();
    benchmark::DoNotOptimize(cons.datacenter().active_server_count());
  }
}
BENCHMARK(BM_ConsolidationRun)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
