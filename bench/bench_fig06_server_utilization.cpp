// Figure 6: CPU utilization of the 400 servers during two consecutive
// days, with the overall load as reference. The paper plots a per-server
// scatter; we print, per 30-minute sample, the overall load plus the
// distribution of active-server utilization (quantiles and band counts),
// which carries the figure's content in tabular form.

#include <algorithm>

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 6", "CPU utilization of 400 servers over 48 h + overall load");
  scenario::DailyScenario daily(bench::paper_daily_config());
  daily.run();

  const auto& samples = daily.collector().samples();
  const auto& snaps = daily.collector().utilization_snapshots();
  std::printf(
      "hour,overall_load,active,u_p10,u_p50,u_p90,"
      "n_u_0_50,n_u_50_80,n_u_80_100\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    if (!bench::in_report_window(s.time)) continue;
    std::vector<double> u;
    int band_low = 0, band_mid = 0, band_high = 0;
    for (double x : snaps[i]) {
      if (x <= 0.0) continue;  // hibernated
      u.push_back(x);
      if (x < 0.5) {
        ++band_low;
      } else if (x < 0.8) {
        ++band_mid;
      } else {
        ++band_high;
      }
    }
    std::sort(u.begin(), u.end());
    const auto q = [&](double p) {
      return u.empty() ? 0.0 : u[static_cast<std::size_t>(p * (u.size() - 1))];
    };
    std::printf("%.1f,%.4f,%zu,%.3f,%.3f,%.3f,%d,%d,%d\n",
                bench::report_hour(s.time), s.overall_load, s.active_servers,
                q(0.10), q(0.50), q(0.90), band_low, band_mid, band_high);
  }
  std::printf(
      "# paper shape: active servers cluster near Ta=0.9 while the load "
      "follows the daily pattern\n");
}

void BM_Daily48hSimulation(benchmark::State& state) {
  for (auto _ : state) {
    // Quarter-scale for the timing kernel.
    scenario::DailyConfig config = bench::scaled_daily_config(100, 1500, 12.0);
    scenario::DailyScenario daily(config);
    daily.run();
    benchmark::DoNotOptimize(daily.datacenter().energy_joules());
  }
}
BENCHMARK(BM_Daily48hSimulation)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
