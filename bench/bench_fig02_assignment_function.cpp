// Figure 2: assignment probability function f_a(u) for p = 2, 3, 5 and
// Ta = 0.9 (paper Sec. II, Eq. 1).

#include "bench_common.hpp"

#include "ecocloud/core/probability.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 2", "assignment probability function f_a(u), Ta=0.9");
  const core::AssignmentFunction fa2(0.9, 2.0);
  const core::AssignmentFunction fa3(0.9, 3.0);
  const core::AssignmentFunction fa5(0.9, 5.0);
  std::printf("u,fa_p2,fa_p3,fa_p5\n");
  for (int i = 0; i <= 100; ++i) {
    const double u = i / 100.0;
    std::printf("%.2f,%.6f,%.6f,%.6f\n", u, fa2(u), fa3(u), fa5(u));
  }
  std::printf("# argmax: p2=%.4f p3=%.4f p5=%.4f (paper: p/(p+1)*Ta)\n",
              fa2.argmax(), fa3.argmax(), fa5.argmax());
}

void BM_AssignmentFunctionEval(benchmark::State& state) {
  const core::AssignmentFunction fa(0.9, static_cast<double>(state.range(0)));
  double u = 0.0;
  for (auto _ : state) {
    u += 1e-6;
    if (u > 1.0) u = 0.0;
    benchmark::DoNotOptimize(fa(u));
  }
}
BENCHMARK(BM_AssignmentFunctionEval)->Arg(2)->Arg(3)->Arg(5);

void BM_AssignmentFunctionConstruct(benchmark::State& state) {
  for (auto _ : state) {
    core::AssignmentFunction fa(0.9, 3.0);
    benchmark::DoNotOptimize(fa.normalizer());
  }
}
BENCHMARK(BM_AssignmentFunctionConstruct);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
