// Figure 7: number of active servers during two consecutive days. The
// count must track the overall load (servers are switched on when needed
// and hibernated when the load allows).

#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace ecocloud;

namespace {

void emit_series() {
  bench::banner("Fig. 7", "number of active servers over 48 h");
  scenario::DailyScenario daily(bench::paper_daily_config());
  daily.run();

  std::printf("hour,active_servers,booting,overall_load\n");
  double min_active = 1e9, max_active = 0.0;
  double load_corr_num = 0.0, load_var = 0.0, act_var = 0.0;
  double mean_load = 0.0, mean_act = 0.0;
  std::size_t n = 0;
  for (const auto& s : daily.collector().samples()) {
    if (!bench::in_report_window(s.time)) continue;
    mean_load += s.overall_load;
    mean_act += static_cast<double>(s.active_servers);
    ++n;
  }
  mean_load /= static_cast<double>(n);
  mean_act /= static_cast<double>(n);
  for (const auto& s : daily.collector().samples()) {
    if (!bench::in_report_window(s.time)) continue;
    std::printf("%.1f,%zu,%zu,%.4f\n", bench::report_hour(s.time),
                s.active_servers, s.booting_servers, s.overall_load);
    const double a = static_cast<double>(s.active_servers);
    min_active = std::min(min_active, a);
    max_active = std::max(max_active, a);
    load_corr_num += (s.overall_load - mean_load) * (a - mean_act);
    load_var += (s.overall_load - mean_load) * (s.overall_load - mean_load);
    act_var += (a - mean_act) * (a - mean_act);
  }
  const double corr = load_corr_num / std::sqrt(load_var * act_var);
  std::printf(
      "# range: %.0f..%.0f of 400; corr(active, load)=%.3f (paper: nearly "
      "proportional, ~120..180)\n",
      min_active, max_active, corr);
}

void BM_ActiveUtilizationSnapshot(benchmark::State& state) {
  dc::DataCenter d = bench::make_active_fleet(400);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.active_utilizations());
  }
}
BENCHMARK(BM_ActiveUtilizationSnapshot);

}  // namespace

int main(int argc, char** argv) {
  emit_series();
  return bench::run_benchmarks(argc, argv);
}
