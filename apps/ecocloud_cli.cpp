// ecocloud_cli — command-line driver for the ecoCloud simulation suite.
//
//   ecocloud_cli run-daily [--config FILE] [--csv FILE]
//   ecocloud_cli run-consolidation [--config FILE] [--csv FILE]
//   ecocloud_cli serve [--port P] [--workers W] [--data-dir DIR]
//   ecocloud_cli gen-traces --out DIR [--vms N] [--hours H] [--seed S]
//   ecocloud_cli functions [--ta X] [--p X] [--tl X] [--th X]
//                          [--alpha X] [--beta X]
//   ecocloud_cli help-config
//
// Experiments are configured with `key = value` files (see help-config);
// absent keys keep the paper's defaults, unknown keys are rejected.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "ecocloud/ckpt/auditor.hpp"
#include "ecocloud/ckpt/checkpoint.hpp"
#include "ecocloud/ckpt/snapshot_io.hpp"
#include "ecocloud/ckpt/watchdog.hpp"
#include "ecocloud/core/probability.hpp"
#include "ecocloud/metrics/episode_summary.hpp"
#include "ecocloud/metrics/event_log.hpp"
#include "ecocloud/metrics/event_log_binary.hpp"
#include "ecocloud/obs/chrome_trace.hpp"
#include "ecocloud/obs/exporters.hpp"
#include "ecocloud/obs/http_server.hpp"
#include "ecocloud/obs/instrumentation.hpp"
#include "ecocloud/obs/logger.hpp"
#include "ecocloud/obs/metric_registry.hpp"
#include "ecocloud/obs/profiler.hpp"
#include "ecocloud/obs/progress.hpp"
#include "ecocloud/par/sharded_runner.hpp"
#include "ecocloud/par/sharded_telemetry.hpp"
#include "ecocloud/scenario/config_io.hpp"
#include "ecocloud/srv/server.hpp"
#include "ecocloud/trace/planetlab_io.hpp"
#include "ecocloud/util/csv.hpp"
#include "ecocloud/util/exit_codes.hpp"
#include "ecocloud/util/string_util.hpp"
#include "ecocloud/util/validation.hpp"

using namespace ecocloud;

namespace {

/// Minimal --key value parser; every option takes exactly one argument.
class Options {
 public:
  Options(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        throw std::invalid_argument("bad option or missing value: " + key);
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    used_.insert(key);
    return it->second;
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) {
    const auto value = get(key);
    return value ? util::parse_double(*value) : fallback;
  }

  void reject_unknown() const {
    for (const auto& [key, value] : values_) {
      if (used_.count(key) == 0) {
        throw std::invalid_argument("unknown option --" + key);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> used_;
};

/// Fail fast on unwritable output paths: probe with an append-open before
/// the (possibly hours-long) run instead of erroring at exit. A file the
/// probe newly created is removed again.
void require_writable(const std::string& path) {
  const bool existed = static_cast<bool>(std::ifstream(path));
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    // A bad output path is a configuration error (exit code 2), caught
    // before the (possibly hours-long) run instead of at exit.
    throw std::invalid_argument("cannot write to '" + path +
                                "' (checked before starting the run)");
  }
  std::fclose(file);
  if (!existed) std::remove(path.c_str());
}

/// Live observability plane shared by all run modes: --serve-metrics
/// (embedded HTTP scrape endpoint), --profile-out (phase profiler +
/// folded-stacks dump), --progress (stderr ticker). Everything here is a
/// pure observer — snapshots are rendered on the sim thread at safe
/// points and the HTTP thread serves only the cached strings.
class LivePlane {
 public:
  explicit LivePlane(Options& options) {
    if (const auto port = options.get("serve-metrics")) {
      const double p = util::parse_double(*port);
      util::require(p >= 0.0 && p <= 65535.0 && p == std::floor(p),
                    "--serve-metrics wants a TCP port (0..65535; 0 picks "
                    "an ephemeral one)");
      port_ = static_cast<std::uint16_t>(p);
      serve_ = true;
    }
    profile_path_ = options.get("profile-out");
    if (profile_path_) require_writable(*profile_path_);
    if (const auto mode = options.get("progress")) {
      if (*mode == "on") {
        progress_ = true;
      } else if (*mode == "off") {
        progress_ = false;
      } else if (*mode == "auto") {
        // Auto: only when a human is plausibly watching.
        progress_ = isatty(fileno(stderr)) != 0;
      } else {
        throw std::invalid_argument("bad --progress '" + *mode +
                                    "' (want auto|on|off)");
      }
    }
  }

  [[nodiscard]] bool any() const {
    return serve_ || profile_path_.has_value() || progress_;
  }
  [[nodiscard]] bool profiling() const { return profile_path_.has_value(); }

  /// Build the profiler (when profiling) and bind the HTTP server (when
  /// serving). \p num_domains: 1 single-calendar, K+1 sharded. The
  /// registry must outlive this object.
  void start(obs::MetricRegistry& registry, std::size_t num_domains) {
    if (!any()) return;
    registry_ = &registry;
    if (profiling()) {
      core_.emplace(num_domains);
      profiler_.emplace(*core_, registry);
    }
    if (serve_) {
      server_.emplace(hub_, port_);
      std::printf(
          "serving /metrics /progress /healthz on http://127.0.0.1:%u\n",
          static_cast<unsigned>(server_->port()));
    }
  }

  /// The profiler core, for ShardedDailyRun::set_profiler / the main
  /// thread's domain installation. Null when not profiling.
  [[nodiscard]] util::PhaseProfiler* core() {
    return core_ ? &*core_ : nullptr;
  }
  [[nodiscard]] obs::Profiler* profiler() {
    return profiler_ ? &*profiler_ : nullptr;
  }

  /// Anchor wall-clock zero and publish a first snapshot so a scrape
  /// racing the run start already gets a document.
  void begin(double sim_start_s, double horizon_s, std::uint64_t events) {
    if (!any()) return;
    tracker_.begin(sim_start_s, horizon_s);
    publish(sim_start_s, events);
  }

  void set_shards(std::vector<obs::ShardProgress> shards) {
    tracker_.set_shards(std::move(shards));
  }

  /// Refresh everything at a safe point: profiler registry mirrors, the
  /// /metrics and /progress snapshots, and the stderr ticker.
  void publish(double sim_now_s, std::uint64_t events) {
    if (registry_ == nullptr) return;
    tracker_.update(sim_now_s, events);
    if (profiler_) profiler_->publish(tracker_.wall_seconds());
    if (server_) {
      std::ostringstream prom;
      obs::write_prometheus(*registry_, prom);
      hub_.publish_metrics(prom.str());
      hub_.publish_progress(tracker_.to_json());
    }
    if (progress_) tracker_.maybe_tick(stderr);
  }

  /// Final publish, folded-stacks dump, and the overhead summary. The
  /// HTTP server keeps answering until this object goes out of scope.
  void finish(double sim_now_s, std::uint64_t events) {
    if (registry_ == nullptr) return;
    publish(sim_now_s, events);
    if (profiler_) {
      std::ofstream out(*profile_path_);
      util::require(out.good(), "cannot open " + *profile_path_);
      profiler_->write_folded(out);
      std::printf("folded stacks written to %s\n", profile_path_->c_str());
      profiler_->print_summary(stdout);
    }
  }

 private:
  bool serve_ = false;
  std::uint16_t port_ = 0;
  std::optional<std::string> profile_path_;
  bool progress_ = false;
  obs::MetricRegistry* registry_ = nullptr;
  std::optional<util::PhaseProfiler> core_;
  std::optional<obs::Profiler> profiler_;
  obs::SnapshotHub hub_;
  std::optional<obs::HttpServer> server_;
  obs::ProgressTracker tracker_;
};

/// Telemetry wiring shared by run-daily and run-consolidation. Flags are
/// consumed up front; attach() subscribes before the run (so it chains
/// behind any EventLog/collector already installed), finish() closes the
/// trace spans and writes the requested output files.
class CliTelemetry {
 public:
  explicit CliTelemetry(Options& options, LivePlane& live)
      : live_(live),
        metrics_path_(options.get("metrics-out")),
        json_path_(options.get("metrics-json")),
        trace_path_(options.get("trace-out")),
        log_path_(options.get("log-out")) {
    if (const auto level = options.get("log-level")) {
      const auto parsed = obs::parse_log_level(*level);
      util::require(parsed.has_value(),
                    "bad --log-level '" + *level +
                        "' (want trace|debug|info|warn|error|off)");
      level_ = *parsed;
    }
    if (trace_path_) trace_.emplace();
    if (log_path_) {
      log_file_.open(*log_path_);
      util::require(log_file_.good(), "cannot open " + *log_path_);
      logger_.set_sink(&log_file_);
      if (level_ == obs::LogLevel::kOff) level_ = obs::LogLevel::kInfo;
    } else if (level_ != obs::LogLevel::kOff) {
      logger_.set_sink(&std::clog);
    }
    logger_.set_level(level_);
  }

  [[nodiscard]] bool enabled() const {
    return metrics_path_ || json_path_ || trace_path_ || log_path_ ||
           level_ != obs::LogLevel::kOff || live_.any();
  }

  void attach(sim::Simulator& sim, const dc::DataCenter& datacenter,
              core::EcoCloudController& controller,
              const faults::FaultInjector* injector, bool resumed = false) {
    if (!enabled()) return;
    logger_.set_clock([&sim] { return sim.now(); });
    instr_.emplace(registry_, logger_, trace_ ? &*trace_ : nullptr);
    instr_->attach_engine(sim);
    instr_->attach_datacenter(datacenter);
    instr_->attach_controller(controller);
    if (injector != nullptr) instr_->attach_faults(*injector);
    live_.start(registry_, /*num_domains=*/1);
    if (live_.core() != nullptr) {
      // Single-calendar runs execute on this thread; one domain covers it.
      util::set_current_domain(&live_.core()->domain(0));
    }
    if (live_.any()) {
      sim::Simulator* simp = &sim;
      obs::ChromeTraceWriter* trace = trace_ ? &*trace_ : nullptr;
      instr_->set_flush_hook([this, simp, trace](sim::SimTime now) {
        live_.publish(now, simp->executed_events());
        if (trace != nullptr && live_.profiler() != nullptr) {
          live_.profiler()->emit_counter_track(*trace, now);
        }
      });
    }
    // A resumed run re-arms the tagged flush event from the snapshot's
    // calendar (register_checkpoint) instead of scheduling a fresh one.
    if (!resumed) instr_->start_flush(sim, kFlushPeriodS);
  }

  /// Register the flush event's owner so snapshots written or restored
  /// under telemetry can rebuild it. Telemetry has no state section: it
  /// is an observer, and its own counters restart on resume.
  void register_checkpoint(ckpt::CheckpointManager& manager, sim::Simulator& sim) {
    if (!instr_) return;
    manager.add_owner(sim::tag_owner::kObsFlush,
                      [this, &sim](const sim::EventTag& tag) {
                        util::require(tag.kind == obs::Instrumentation::kEvFlush,
                                      "snapshot: unknown telemetry event kind");
                        return instr_->make_flush_callback(sim);
                      });
  }

  /// Register pull-mode checkpoint/audit metrics (no-op without telemetry).
  void attach_robustness(std::function<obs::RobustnessSample()> sample) {
    if (instr_) instr_->attach_robustness(std::move(sample));
  }

  /// Fail fast on unwritable output paths (the log file is already open).
  void probe_outputs() const {
    for (const auto& path : {metrics_path_, json_path_, trace_path_}) {
      if (path) require_writable(*path);
    }
  }

  void finish(sim::SimTime end) {
    if (!instr_) return;
    instr_->finalize(end);
    if (trace_ && live_.profiler() != nullptr) {
      live_.profiler()->emit_counter_track(*trace_, end);
    }
    if (metrics_path_) {
      std::ofstream out(*metrics_path_);
      util::require(out.good(), "cannot open " + *metrics_path_);
      obs::write_prometheus(registry_, out);
      std::printf("metrics written to %s (%zu series)\n", metrics_path_->c_str(),
                  registry_.num_instances());
    }
    if (json_path_) {
      std::ofstream out(*json_path_);
      util::require(out.good(), "cannot open " + *json_path_);
      obs::write_json(registry_, out);
      std::printf("metrics JSON written to %s\n", json_path_->c_str());
    }
    if (trace_path_) {
      std::ofstream out(*trace_path_);
      util::require(out.good(), "cannot open " + *trace_path_);
      trace_->write(out);
      std::printf("trace written to %s (%zu events; open in ui.perfetto.dev)\n",
                  trace_path_->c_str(), trace_->size());
    }
    if (log_path_) {
      std::printf("log written to %s (%llu lines)\n", log_path_->c_str(),
                  static_cast<unsigned long long>(logger_.lines_written()));
    }
  }

 private:
  /// Sim-time period of the logger/trace flush hook (5 min).
  static constexpr double kFlushPeriodS = 300.0;

  LivePlane& live_;
  std::optional<std::string> metrics_path_;
  std::optional<std::string> json_path_;
  std::optional<std::string> trace_path_;
  std::optional<std::string> log_path_;
  obs::LogLevel level_ = obs::LogLevel::kOff;
  obs::MetricRegistry registry_;
  obs::Logger logger_;
  std::optional<obs::ChromeTraceWriter> trace_;
  std::ofstream log_file_;
  std::optional<obs::Instrumentation> instr_;
};

/// Checkpoint/audit/watchdog wiring shared by run-daily and
/// run-consolidation. Flags override the config file's [checkpoint] /
/// [audit] / [watchdog] sections; wire() builds the machinery against the
/// constructed scenario and launch() either restores a snapshot or starts
/// the periodic services.
class Robustness {
 public:
  Robustness(Options& options, scenario::RunControl run) : run_(std::move(run)) {
    if (const auto v = options.get("checkpoint-out")) run_.checkpoint_out = *v;
    run_.checkpoint_every_s =
        options.get_double("checkpoint-every", run_.checkpoint_every_s);
    resume_path_ = options.get("resume-from");
    run_.audit_every_s = options.get_double("audit-every", run_.audit_every_s);
    if (const auto v = options.get("audit-action")) run_.audit_action = *v;
    run_.watchdog_stall_s =
        options.get_double("watchdog-stall", run_.watchdog_stall_s);
    if (!run_.checkpoint_out.empty()) {
      util::require(run_.checkpoint_every_s > 0.0 || resume_path_.has_value(),
                    "--checkpoint-out needs --checkpoint-every SECONDS (> 0)");
      require_writable(run_.checkpoint_out);
    }
    util::require(run_.watchdog_stall_s <= 0.0 || run_.audit_every_s > 0.0,
                  "the watchdog is fed by the auditor's heartbeat: "
                  "--watchdog-stall needs --audit-every");
  }

  [[nodiscard]] bool resumed() const { return resume_path_.has_value(); }
  [[nodiscard]] bool checkpointing() const {
    return resumed() || !run_.checkpoint_out.empty();
  }

  /// Build auditor, watchdog, and checkpoint manager. \p register_scenario
  /// registers the scenario's own sections/owners when checkpointing.
  template <typename RegisterFn>
  void wire(sim::Simulator& sim, dc::DataCenter& datacenter,
            const core::EcoCloudController* controller,
            const faults::RedeployQueue* redeploy, metrics::EventLog* event_log,
            CliTelemetry& telemetry, RegisterFn register_scenario) {
    if (run_.watchdog_stall_s > 0.0) {
      watchdog_.emplace(ckpt::Watchdog::Config{run_.watchdog_stall_s, {}});
    }
    if (run_.audit_every_s > 0.0) {
      ckpt::AuditorConfig audit;
      audit.period_s = run_.audit_every_s;
      audit.action = ckpt::parse_audit_action(run_.audit_action);
      audit.tolerance = run_.audit_tolerance;
      audit.strict_vm_accounting = run_.audit_strict;
      auditor_.emplace(sim, datacenter, audit);
      if (controller != nullptr) auditor_->attach_controller(controller);
      if (redeploy != nullptr) auditor_->attach_redeploy(redeploy);
      if (watchdog_) auditor_->set_watchdog(&*watchdog_);
    }
    if (checkpointing()) {
      manager_.emplace(sim);
      register_scenario(*manager_);
      if (event_log != nullptr) {
        manager_->add_section(
            "event_log",
            [event_log](util::BinWriter& w) { event_log->save_state(w); },
            [event_log](util::BinReader& r) { event_log->load_state(r); });
      }
      if (auditor_) {
        manager_->add_section(
            "auditor", [this](util::BinWriter& w) { auditor_->save_state(w); },
            [this](util::BinReader& r) { auditor_->load_state(r); });
        manager_->add_owner(sim::tag_owner::kAuditor,
                            [this](const sim::EventTag& tag) {
                              return auditor_->rebuild_event(tag);
                            });
      }
      telemetry.register_checkpoint(*manager_, sim);
    }
    if (manager_ || auditor_) {
      telemetry.attach_robustness([this] {
        obs::RobustnessSample sample;
        if (manager_) {
          const auto& c = manager_->stats();
          sample.checkpoints_written = c.checkpoints_written;
          sample.snapshot_bytes_last = c.snapshot_bytes_last;
          sample.save_wall_seconds_total = c.save_wall_seconds_total;
        }
        if (auditor_) {
          const auto& a = auditor_->stats();
          sample.audits_run = a.audits_run;
          sample.audits_failed = a.audits_failed;
          sample.heals_applied = a.heals_applied;
        }
        return sample;
      });
    }
  }

  /// Restore the snapshot (resume) or start the periodic services
  /// (fresh run). Returns true when the run resumed.
  bool launch(sim::Simulator& sim) {
    if (resumed()) {
      manager_->restore(*resume_path_);
      // Keep writing snapshots: to --checkpoint-out when given, otherwise
      // back over the file we resumed from (the campaign keeps advancing).
      manager_->set_output_path(
          !run_.checkpoint_out.empty() ? run_.checkpoint_out : *resume_path_);
      std::printf("resumed from %s at t=%.0f s (%llu events executed)\n",
                  resume_path_->c_str(), sim.now(),
                  static_cast<unsigned long long>(sim.executed_events()));
    } else {
      if (manager_ && !run_.checkpoint_out.empty()) {
        manager_->start_periodic(run_.checkpoint_every_s, run_.checkpoint_out);
      }
      if (auditor_) auditor_->start();
    }
    if (watchdog_) watchdog_->arm();
    return resumed();
  }

  void finish() {
    if (watchdog_) watchdog_->disarm();
    if (auditor_) {
      const auto& a = auditor_->stats();
      std::printf("audits            %llu run, %llu failed (action=%s)\n",
                  static_cast<unsigned long long>(a.audits_run),
                  static_cast<unsigned long long>(a.audits_failed),
                  ckpt::to_string(auditor_->config().action));
    }
    if (manager_ && manager_->stats().checkpoints_written > 0) {
      const auto& c = manager_->stats();
      std::printf("checkpoints       %llu written (last %llu bytes, %.1f ms)\n",
                  static_cast<unsigned long long>(c.checkpoints_written),
                  static_cast<unsigned long long>(c.snapshot_bytes_last),
                  1e3 * c.save_wall_seconds_last);
    }
  }

 private:
  scenario::RunControl run_;
  std::optional<std::string> resume_path_;
  std::optional<ckpt::Watchdog> watchdog_;
  std::optional<ckpt::RuntimeAuditor> auditor_;
  std::optional<ckpt::CheckpointManager> manager_;
};

/// --events output format: compact binary records by default (decode with
/// eventlog2csv); an explicit .csv suffix keeps the legacy text format.
bool events_path_wants_csv(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

int usage() {
  std::puts(
      "usage: ecocloud_cli <command> [options]\n"
      "\n"
      "commands:\n"
      "  run-daily          48-hour trace-driven experiment (paper Sec. III)\n"
      "    --config FILE    key=value configuration (default: paper setup)\n"
      "    --csv FILE       also write the 30-minute series as CSV\n"
      "    --events FILE    also write the full decision event log (compact\n"
      "                     binary; convert with eventlog2csv; a .csv suffix\n"
      "                     writes the legacy text format directly)\n"
      "    --metrics-out F  write Prometheus text-format metrics at exit\n"
      "    --metrics-json F write a JSON metrics snapshot at exit\n"
      "    --trace-out F    write a Chrome trace-event timeline (open the\n"
      "                     file in ui.perfetto.dev)\n"
      "    --log-out F      structured JSONL log (default level info)\n"
      "    --log-level L    trace|debug|info|warn|error|off (stderr when no\n"
      "                     --log-out is given)\n"
      "    --checkpoint-out F   write crash-safe snapshots to F\n"
      "    --checkpoint-every S snapshot cadence in sim seconds\n"
      "    --resume-from F      restore a snapshot and finish the run\n"
      "                         (bit-identical to the uninterrupted run)\n"
      "    --audit-every S      run the invariant auditor every S sim secs\n"
      "    --audit-action A     log | abort | heal on a failed audit\n"
      "    --watchdog-stall S   abort after S wall seconds without progress\n"
      "    --serve-metrics P  live scrape endpoint on 127.0.0.1:P while the\n"
      "                     run executes (GET /metrics /progress /healthz;\n"
      "                     P=0 picks an ephemeral port, printed at start)\n"
      "    --profile-out F  phase profiler: folded-stacks dump to F (feed to\n"
      "                     flamegraph.pl) plus per-phase histograms in the\n"
      "                     metrics outputs and a summary on stdout\n"
      "    --progress M     auto|on|off stderr progress ticker (auto = only\n"
      "                     when stderr is a TTY; at most one line/second)\n"
      "    --shards K       sharded parallel engine: K independent shards,\n"
      "                     deterministic output for fixed K regardless of\n"
      "                     thread count; composes with checkpointing,\n"
      "                     auditing, faults, and telemetry\n"
      "    --threads N      worker threads for --shards (default: all cores)\n"
      "    --sync-interval S  epoch barrier period in sim seconds (300)\n"
      "  run-consolidation  assignment-only experiment (paper Sec. IV)\n"
      "    --config FILE, --csv FILE, telemetry and robustness options as\n"
      "    above\n"
      "  serve              campaign server: accept scenario submissions over\n"
      "                     HTTP and run them to completion (crash-tolerant;\n"
      "                     see DESIGN.md Sec. 16)\n"
      "    --port P         API port (default 0 = ephemeral, printed at start)\n"
      "    --workers N      concurrent campaign executions (default 2)\n"
      "    --queue-capacity N  queued submissions before 429 (default 8)\n"
      "    --data-dir DIR   journal/checkpoints/event logs (default campaigns)\n"
      "    --slice S        sim-seconds per slice between safe points (1800)\n"
      "    --checkpoint-every-slices N  periodic durability cadence (4)\n"
      "    --rss-high-mb M  checkpoint+pause the largest campaign above M MB\n"
      "    --rss-low-mb M   resume paused campaigns below M MB (0.9*high)\n"
      "    --retry-after S  Retry-After header on 429 responses (5)\n"
      "                     SIGTERM drains: admission stops (503), in-flight\n"
      "                     campaigns checkpoint at the next safe point, the\n"
      "                     journal is flushed, exit code 0\n"
      "  gen-traces         write a synthetic PlanetLab-format trace directory\n"
      "    --out DIR [--vms N] [--hours H] [--seed S]\n"
      "  functions          print f_a / f_l / f_h tables\n"
      "    [--ta X] [--p X] [--tl X] [--th X] [--alpha X] [--beta X]\n"
      "  help-config        list every configuration key\n"
      "\n"
      "exit codes: 0 success, 1 runtime failure, 2 configuration error,\n"
      "            4 audit violation (action=abort), 5 watchdog stall");
  return util::exit_code::kConfigError;
}

void write_series_csv(const std::string& path,
                      const std::vector<metrics::Sample>& samples) {
  std::ofstream out(path);
  util::require(out.good(), "cannot open " + path);
  util::CsvWriter csv(out);
  csv.header({"time_s", "active_servers", "booting", "overall_load", "power_w",
              "overload_percent", "window_energy_j"});
  for (const auto& s : samples) {
    csv.row(std::vector<double>{s.time, static_cast<double>(s.active_servers),
                                static_cast<double>(s.booting_servers),
                                s.overall_load, s.power_w, s.overload_percent,
                                s.window_energy_j});
  }
  std::printf("series written to %s (%zu samples)\n", path.c_str(),
              samples.size());
}

template <typename LoadFn>
auto load_config(Options& options, LoadFn load) {
  if (const auto path = options.get("config")) {
    std::ifstream in(*path);
    util::require(in.good(), "cannot open config file " + *path);
    return load(in);
  }
  std::istringstream empty;
  return load(empty);
}

int run_daily_sharded(Options& options, scenario::DailyConfig config,
                      std::size_t shards) {
  const auto csv_path = options.get("csv");
  const auto events_path = options.get("events");

  // Run-control flags override the config file's sections, exactly as the
  // single-calendar Robustness wiring does. The one relaxation: no
  // watchdog-needs-audit coupling, because the sharded coordinator beats
  // the watchdog at every barrier whether or not audits are enabled.
  if (const auto v = options.get("checkpoint-out")) config.run.checkpoint_out = *v;
  config.run.checkpoint_every_s =
      options.get_double("checkpoint-every", config.run.checkpoint_every_s);
  const auto resume_path = options.get("resume-from");
  config.run.audit_every_s =
      options.get_double("audit-every", config.run.audit_every_s);
  if (const auto v = options.get("audit-action")) config.run.audit_action = *v;
  config.run.watchdog_stall_s =
      options.get_double("watchdog-stall", config.run.watchdog_stall_s);
  if (!config.run.checkpoint_out.empty()) {
    util::require(
        config.run.checkpoint_every_s > 0.0 || resume_path.has_value(),
        "--checkpoint-out needs --checkpoint-every SECONDS (> 0)");
    require_writable(config.run.checkpoint_out);
  }

  // Telemetry flags (same surface as the single-threaded runs; the merge
  // back into one metrics/log/trace output happens after the run).
  const auto metrics_path = options.get("metrics-out");
  const auto json_path = options.get("metrics-json");
  const auto trace_path = options.get("trace-out");
  const auto log_path = options.get("log-out");
  obs::LogLevel log_level = obs::LogLevel::kOff;
  if (const auto level = options.get("log-level")) {
    const auto parsed = obs::parse_log_level(*level);
    util::require(parsed.has_value(),
                  "bad --log-level '" + *level +
                      "' (want trace|debug|info|warn|error|off)");
    log_level = *parsed;
  }
  if (log_path && log_level == obs::LogLevel::kOff) {
    log_level = obs::LogLevel::kInfo;
  }

  par::ParConfig par;
  par.shards = shards;
  par.threads = static_cast<std::size_t>(options.get_double("threads", 0.0));
  par.sync_interval_s = options.get_double("sync-interval", par.sync_interval_s);
  util::require(par.sync_interval_s > 0.0,
                "--sync-interval wants a positive number of sim seconds");
  if (par.sync_interval_s > config.horizon_s) {
    std::fprintf(stderr,
                 "warning: --sync-interval %.0f s exceeds the %.0f s horizon; "
                 "the whole run is one epoch and cross-shard hand-off only "
                 "happens at the end\n",
                 par.sync_interval_s, config.horizon_s);
  } else if (par.sync_interval_s > 86400.0) {
    std::fprintf(stderr,
                 "warning: --sync-interval %.0f s exceeds a simulated day; "
                 "stranded migrations wait that long for a cross-shard "
                 "hand-off\n",
                 par.sync_interval_s);
  }
  LivePlane live(options);
  options.reject_unknown();
  for (const auto& path :
       {csv_path, events_path, metrics_path, json_path, trace_path, log_path}) {
    if (path) require_writable(*path);
  }

  const std::size_t threads =
      par.threads != 0
          ? par.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::printf(
      "daily run: %zu servers, %zu VMs, %.0f h (+%.0f h warm-up), "
      "%zu shards on %zu threads\n",
      config.fleet.num_servers, config.num_vms,
      (config.horizon_s - config.warmup_s) / sim::kHour,
      config.warmup_s / sim::kHour, par.shards, threads);

  par::ShardedDailyRun run(std::move(config), par);
  if (resume_path) {
    run.restore_snapshot(*resume_path);
  }

  std::optional<par::ShardedTelemetry> telemetry;
  if (metrics_path || json_path || trace_path || log_path ||
      log_level != obs::LogLevel::kOff || live.any()) {
    par::ShardedTelemetry::Options topt;
    topt.trace = trace_path.has_value();
    topt.log_level = log_level;
    telemetry.emplace(run, topt);
  }
  if (resume_path) {
    std::printf("resumed from %s (sharded snapshot)\n", resume_path->c_str());
  }

  // The live plane hangs off the barrier hook (chained AFTER the
  // ShardedTelemetry one so its counters are fresh when the snapshot is
  // rendered): refresh per-shard epoch/lag gauges, then publish /metrics
  // and /progress. No calendar events, no RNG — pure observer.
  std::vector<obs::Gauge*> epoch_gauges;
  std::vector<obs::Gauge*> lag_gauges;
  if (live.any()) {
    obs::MetricRegistry& registry = telemetry->registry();
    live.start(registry, run.num_shards() + 1);
    run.set_profiler(live.core());
    for (std::size_t k = 0; k < run.num_shards(); ++k) {
      const obs::Labels labels{{"shard", std::to_string(k)}};
      epoch_gauges.push_back(
          &registry.gauge("ecocloud_shard_epoch_wall_seconds", labels,
                          "Wall seconds the shard spent on the last epoch"));
      lag_gauges.push_back(&registry.gauge(
          "ecocloud_shard_barrier_lag_seconds", labels,
          "How long the shard waited for the slowest one at the last barrier"));
    }
    auto prev = std::move(run.on_barrier);
    run.on_barrier = [&run, &live, &epoch_gauges, &lag_gauges,
                      prev = std::move(prev)](sim::SimTime t) {
      if (prev) prev(t);
      std::uint64_t events = 0;
      std::vector<obs::ShardProgress> progress;
      progress.reserve(run.num_shards());
      for (std::size_t k = 0; k < run.num_shards(); ++k) {
        obs::ShardProgress sp;
        sp.shard = static_cast<int>(k);
        sp.epoch_wall_s = run.last_epoch_wall_s()[k];
        sp.barrier_lag_s = run.last_barrier_lag_s()[k];
        sp.events = run.shard(k).simulator().executed_events();
        events += sp.events;
        epoch_gauges[k]->set(sp.epoch_wall_s);
        lag_gauges[k]->set(sp.barrier_lag_s);
        progress.push_back(sp);
      }
      live.set_shards(std::move(progress));
      live.publish(t, events);
    };
    std::uint64_t start_events = 0;
    for (std::size_t k = 0; k < run.num_shards(); ++k) {
      start_events += run.shard(k).simulator().executed_events();
    }
    live.begin(run.shard(0).simulator().now(), run.config().horizon_s,
               start_events);
  }

  run.run();
  const par::ParStats& s = run.stats();
  const sim::SimTime horizon = run.config().horizon_s;
  if (telemetry) telemetry->finalize(horizon);
  live.finish(horizon, s.executed_events);

  double vm_seconds = 0.0;
  double overload_vm_seconds = 0.0;
  for (std::size_t k = 0; k < run.num_shards(); ++k) {
    vm_seconds += run.shard(k).datacenter().vm_seconds();
    overload_vm_seconds += run.shard(k).datacenter().overload_vm_seconds();
  }
  std::printf("energy            %.1f kWh\n", run.total_energy_kwh());
  std::printf("migrations        %llu (%llu low / %llu high, %llu cross-shard)\n",
              static_cast<unsigned long long>(s.migrations),
              static_cast<unsigned long long>(s.low_migrations),
              static_cast<unsigned long long>(s.high_migrations),
              static_cast<unsigned long long>(s.cross_shard_migrations));
  std::printf("switches          %llu on / %llu off\n",
              static_cast<unsigned long long>(s.activations),
              static_cast<unsigned long long>(s.hibernations));
  std::printf("over-demand       %.4f%% of VM-time\n",
              vm_seconds > 0.0 ? 100.0 * overload_vm_seconds / vm_seconds
                               : 0.0);
  std::printf("engine            %llu events over %llu barriers; "
              "%llu stranded wishes\n",
              static_cast<unsigned long long>(s.executed_events),
              static_cast<unsigned long long>(s.barriers),
              static_cast<unsigned long long>(s.stranded_wishes));
  if (run.shard(0).fault_injector() != nullptr) {
    std::uint64_t crashes = 0, repairs = 0, orphans = 0, redeployed = 0,
                  abandoned = 0;
    double downtime = 0.0;
    for (std::size_t k = 0; k < run.num_shards(); ++k) {
      const auto& r = run.shard(k).fault_injector()->stats();
      crashes += r.crashes();
      repairs += r.repairs();
      orphans += r.orphaned_vms();
      redeployed += r.redeployed_vms();
      abandoned += r.abandoned_vms();
      downtime += r.downtime_vm_seconds();
    }
    std::printf("faults            %llu crashes / %llu repairs; "
                "%llu orphans (%llu redeployed, %llu abandoned); "
                "%.1f VM-min downtime\n",
                static_cast<unsigned long long>(crashes),
                static_cast<unsigned long long>(repairs),
                static_cast<unsigned long long>(orphans),
                static_cast<unsigned long long>(redeployed),
                static_cast<unsigned long long>(abandoned), downtime / 60.0);
  }
  if (s.audits_run > 0) {
    std::printf("audits            %llu barrier rounds, %llu failed checks "
                "(action=%s)\n",
                static_cast<unsigned long long>(s.audits_run),
                static_cast<unsigned long long>(s.audit_failures),
                run.config().run.audit_action.c_str());
  }
  if (s.checkpoints_written > 0) {
    std::printf("checkpoints       %llu written\n",
                static_cast<unsigned long long>(s.checkpoints_written));
  }
  if (csv_path) write_series_csv(*csv_path, run.merged_samples());
  if (events_path) {
    const bool as_csv = events_path_wants_csv(*events_path);
    std::ofstream out(*events_path,
                      as_csv ? std::ios::out : std::ios::out | std::ios::binary);
    util::require(out.good(), "cannot open " + *events_path);
    if (as_csv) {
      run.write_events_csv(out);
    } else {
      run.write_events_binary(out);
    }
    std::printf("event log written to %s%s\n", events_path->c_str(),
                as_csv ? "" : " (binary; convert with eventlog2csv)");
  }
  if (telemetry) {
    if (metrics_path) {
      std::ofstream out(*metrics_path);
      util::require(out.good(), "cannot open " + *metrics_path);
      obs::write_prometheus(telemetry->registry(), out);
      std::printf("metrics written to %s (%zu series)\n", metrics_path->c_str(),
                  telemetry->registry().num_instances());
    }
    if (json_path) {
      std::ofstream out(*json_path);
      util::require(out.good(), "cannot open " + *json_path);
      obs::write_json(telemetry->registry(), out);
      std::printf("metrics JSON written to %s\n", json_path->c_str());
    }
    if (trace_path) {
      std::ofstream out(*trace_path);
      util::require(out.good(), "cannot open " + *trace_path);
      telemetry->write_trace(out);
      std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                  trace_path->c_str());
    }
    if (log_path) {
      std::ofstream out(*log_path);
      util::require(out.good(), "cannot open " + *log_path);
      telemetry->write_log(out);
      std::printf("log written to %s (%llu lines, shard-merged)\n",
                  log_path->c_str(),
                  static_cast<unsigned long long>(telemetry->log_lines()));
    } else if (log_level != obs::LogLevel::kOff) {
      telemetry->write_log(std::clog);
    }
  }
  return 0;
}

int run_daily(Options& options) {
  auto config = load_config(options, scenario::load_daily_config);
  if (const auto shards = options.get("shards")) {
    const auto k = util::parse_double(*shards);
    util::require(k >= 1.0 && k == static_cast<double>(static_cast<std::size_t>(k)),
                  "--shards wants a positive integer");
    return run_daily_sharded(options, std::move(config),
                             static_cast<std::size_t>(k));
  }
  const auto csv_path = options.get("csv");
  const auto events_path = options.get("events");
  LivePlane live(options);
  Robustness robustness(options, config.run);
  CliTelemetry telemetry(options, live);
  options.reject_unknown();

  for (const auto& path : {csv_path, events_path}) {
    if (path) require_writable(*path);
  }
  telemetry.probe_outputs();

  std::printf("daily run: %zu servers, %zu VMs, %.0f h (+%.0f h warm-up)\n",
              config.fleet.num_servers, config.num_vms,
              (config.horizon_s - config.warmup_s) / sim::kHour,
              config.warmup_s / sim::kHour);
  scenario::DailyScenario daily(config);
  metrics::EventLog event_log;
  if (events_path) event_log.attach(*daily.ecocloud());
  if (daily.ecocloud() != nullptr) {
    telemetry.attach(daily.simulator(), daily.datacenter(), *daily.ecocloud(),
                     daily.fault_injector(), robustness.resumed());
  }
  auto* injector = daily.fault_injector();
  robustness.wire(daily.simulator(), daily.datacenter(), daily.ecocloud(),
                  injector != nullptr ? &injector->redeploy() : nullptr,
                  events_path ? &event_log : nullptr, telemetry,
                  [&daily](ckpt::CheckpointManager& manager) {
                    daily.register_checkpoint(manager);
                  });
  const bool resumed_run = robustness.launch(daily.simulator());
  live.begin(daily.simulator().now(), config.horizon_s,
             daily.simulator().executed_events());
  if (resumed_run) {
    daily.run_resumed();
  } else {
    daily.run();
  }
  robustness.finish();
  live.finish(daily.simulator().now(), daily.simulator().executed_events());
  telemetry.finish(daily.simulator().now());

  const auto& d = daily.datacenter();
  const auto episodes = metrics::summarize_episodes(d.overload_episodes());
  std::printf("energy            %.1f kWh\n", d.energy_joules() / 3.6e6);
  std::printf("migrations        %llu (%llu low / %llu high), max %zu in flight\n",
              static_cast<unsigned long long>(d.total_migrations()),
              static_cast<unsigned long long>(daily.ecocloud()->low_migrations()),
              static_cast<unsigned long long>(daily.ecocloud()->high_migrations()),
              d.max_inflight_migrations());
  std::printf("switches          %llu on / %llu off\n",
              static_cast<unsigned long long>(d.total_activations()),
              static_cast<unsigned long long>(d.total_hibernations()));
  std::printf("over-demand       %.4f%% of VM-time; %zu violations, %.1f%% <30 s\n",
              d.vm_seconds() > 0.0
                  ? 100.0 * d.overload_vm_seconds() / d.vm_seconds()
                  : 0.0,
              episodes.count, 100.0 * episodes.fraction_under_30s);
  std::printf("control plane     %llu messages (%llu invitations)\n",
              static_cast<unsigned long long>(daily.ecocloud()->messages().total()),
              static_cast<unsigned long long>(
                  daily.ecocloud()->messages().invitations_sent));
  if (const auto* injector = daily.fault_injector()) {
    const auto& r = injector->stats();
    std::printf("faults            %llu crashes / %llu repairs; "
                "%llu orphans (%llu redeployed, %llu abandoned)\n",
                static_cast<unsigned long long>(r.crashes()),
                static_cast<unsigned long long>(r.repairs()),
                static_cast<unsigned long long>(r.orphaned_vms()),
                static_cast<unsigned long long>(r.redeployed_vms()),
                static_cast<unsigned long long>(r.abandoned_vms()));
    std::printf("                  %llu migrations interrupted, %llu aborted, "
                "%llu boot failures; %llu messages lost\n",
                static_cast<unsigned long long>(
                    daily.ecocloud()->interrupted_migrations()),
                static_cast<unsigned long long>(
                    daily.ecocloud()->aborted_migrations()),
                static_cast<unsigned long long>(daily.ecocloud()->boot_failures()),
                static_cast<unsigned long long>(
                    daily.ecocloud()->messages().invitations_lost +
                    daily.ecocloud()->messages().replies_lost));
    std::printf("availability      %.6f%% (%.1f VM-min downtime, "
                "median redeploy %.1f s)\n",
                100.0 * injector->availability(),
                r.downtime_vm_seconds() / 60.0,
                r.redeployed_vms() > 0 ? r.redeploy_quantiles().quantile(0.5)
                                       : 0.0);
  }
  if (csv_path) write_series_csv(*csv_path, daily.collector().samples());
  if (events_path) {
    const bool as_csv = events_path_wants_csv(*events_path);
    std::ofstream out(*events_path,
                      as_csv ? std::ios::out : std::ios::out | std::ios::binary);
    util::require(out.good(), "cannot open " + *events_path);
    if (as_csv) {
      event_log.write_csv(out);
    } else {
      metrics::write_binary_events(out, event_log.events());
    }
    std::printf("event log written to %s (%zu events%s)\n", events_path->c_str(),
                event_log.size(),
                as_csv ? "" : "; binary, convert with eventlog2csv");
  }
  return 0;
}

int run_consolidation(Options& options) {
  auto config = load_config(options, scenario::load_consolidation_config);
  const auto csv_path = options.get("csv");
  LivePlane live(options);
  Robustness robustness(options, config.run);
  CliTelemetry telemetry(options, live);
  options.reject_unknown();

  if (csv_path) require_writable(*csv_path);
  telemetry.probe_outputs();

  std::printf("consolidation run: %zu servers, %zu initial VMs, %.0f h\n",
              config.num_servers, config.initial_vms,
              config.horizon_s / sim::kHour);
  scenario::ConsolidationScenario cons(config);
  telemetry.attach(cons.simulator(), cons.datacenter(), cons.controller(),
                   /*injector=*/nullptr, robustness.resumed());
  robustness.wire(cons.simulator(), cons.datacenter(), &cons.controller(),
                  /*redeploy=*/nullptr, /*event_log=*/nullptr, telemetry,
                  [&cons](ckpt::CheckpointManager& manager) {
                    cons.register_checkpoint(manager);
                  });
  const bool resumed_run = robustness.launch(cons.simulator());
  live.begin(cons.simulator().now(), config.horizon_s,
             cons.simulator().executed_events());
  if (resumed_run) {
    cons.run_resumed();
  } else {
    cons.run();
  }
  robustness.finish();
  live.finish(cons.simulator().now(), cons.simulator().executed_events());
  telemetry.finish(cons.simulator().now());
  const auto& d = cons.datacenter();
  std::printf("final: %zu active / %zu hibernated; arrivals=%llu departures=%llu "
              "rejections=%llu\n",
              d.active_server_count(),
              d.num_servers() - d.active_server_count() - d.booting_server_count(),
              static_cast<unsigned long long>(cons.open_system().total_arrivals()),
              static_cast<unsigned long long>(cons.open_system().total_departures()),
              static_cast<unsigned long long>(cons.open_system().total_rejections()));
  if (csv_path) write_series_csv(*csv_path, cons.collector().samples());
  return 0;
}

int gen_traces(Options& options) {
  const auto out_dir = options.get("out");
  util::require(out_dir.has_value(), "gen-traces requires --out DIR");
  const double hours = options.get_double("hours", 48.0);
  const auto vms = static_cast<std::size_t>(options.get_double("vms", 6000.0));
  const auto seed = static_cast<std::uint64_t>(options.get_double("seed", 1.0));
  options.reject_unknown();

  trace::WorkloadModel model;
  util::Rng rng(seed);
  const auto steps = static_cast<std::size_t>(hours * 3600.0 / 300.0) + 1;
  const auto set = trace::TraceSet::generate(model, vms, steps, rng);
  trace::write_planetlab_dir(set, *out_dir);
  std::printf("wrote %zu traces x %zu samples (5-min cadence) to %s\n", vms,
              steps, out_dir->c_str());
  return 0;
}

int functions(Options& options) {
  const double ta = options.get_double("ta", 0.9);
  const double p = options.get_double("p", 3.0);
  const double tl = options.get_double("tl", 0.5);
  const double th = options.get_double("th", 0.95);
  const double alpha = options.get_double("alpha", 0.25);
  const double beta = options.get_double("beta", 0.25);
  options.reject_unknown();

  const core::AssignmentFunction fa(ta, p);
  const core::LowMigrationFunction fl(tl, alpha);
  const core::HighMigrationFunction fh(th, beta);
  std::printf("u,fa,fl,fh   (Ta=%.2f p=%.1f Tl=%.2f Th=%.2f a=%.2f b=%.2f; "
              "fa peaks at u=%.3f)\n", ta, p, tl, th, alpha, beta, fa.argmax());
  for (int i = 0; i <= 50; ++i) {
    const double u = i / 50.0;
    std::printf("%.2f,%.4f,%.4f,%.4f\n", u, fa(u), fl(u), fh(u));
  }
  return 0;
}

/// SIGTERM/SIGINT flag for the `serve` loop. A plain flag (no locks, no
/// allocation) is all a signal handler may touch; the main thread polls
/// it and runs the actual drain protocol in normal context.
volatile std::sig_atomic_t g_serve_stop = 0;

void serve_signal_handler(int) { g_serve_stop = 1; }

int serve(Options& options) {
  srv::ServerConfig config;
  const double port = options.get_double("port", 0.0);
  util::require(port >= 0.0 && port <= 65535.0 && port == std::floor(port),
                "--port wants a TCP port (0..65535; 0 picks an ephemeral one)");
  config.port = static_cast<std::uint16_t>(port);
  const double workers = options.get_double("workers", 2.0);
  util::require(workers >= 1.0 && workers == std::floor(workers),
                "--workers wants a positive integer");
  config.workers = static_cast<std::size_t>(workers);
  const double capacity = options.get_double("queue-capacity", 8.0);
  util::require(capacity >= 1.0 && capacity == std::floor(capacity),
                "--queue-capacity wants a positive integer");
  config.queue_capacity = static_cast<std::size_t>(capacity);
  if (const auto dir = options.get("data-dir")) config.data_dir = *dir;
  config.slice_s = options.get_double("slice", config.slice_s);
  util::require(config.slice_s > 0.0,
                "--slice wants a positive number of sim seconds");
  config.checkpoint_every_slices = static_cast<std::size_t>(options.get_double(
      "checkpoint-every-slices",
      static_cast<double>(config.checkpoint_every_slices)));
  config.rss_high_mb = options.get_double("rss-high-mb", 0.0);
  config.rss_low_mb = options.get_double("rss-low-mb", 0.0);
  config.retry_after_s =
      static_cast<int>(options.get_double("retry-after", 5.0));
  options.reject_unknown();

  srv::CampaignServer server(std::move(config));
  server.start();
  std::printf("campaign server listening on http://127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  if (server.recovered_campaigns() > 0) {
    std::printf("journal replay: %zu campaigns recovered\n",
                server.recovered_campaigns());
  }
  std::printf("POST /campaigns to submit; SIGTERM drains and exits 0\n");
  std::fflush(stdout);

  std::signal(SIGTERM, serve_signal_handler);
  std::signal(SIGINT, serve_signal_handler);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("drain: admission stopped, checkpointing in-flight campaigns\n");
  std::fflush(stdout);
  server.drain();
  std::printf("campaign server drained cleanly\n");
  return util::exit_code::kSuccess;
}

int help_config() {
  std::puts(
      "daily config keys (key = value, '#' comments, defaults = paper):\n"
      "  fleet:     servers, core_mhz, core_mix (e.g. 4,6,8), ram_per_core_mb\n"
      "  workload:  vms, reference_mhz, sample_period_s, diurnal_amplitude,\n"
      "             diurnal_peak_hour, ar1_rho, dev_base, dev_slope\n"
      "  run:       horizon_hours, warmup_hours, seed\n"
      "  algorithm: ta, p, tl, th, alpha, beta, high_dest_factor,\n"
      "             monitor_period_s, migration_cooldown_s,\n"
      "             migration_latency_s, boot_time_s, grace_period_s,\n"
      "             hibernate_delay_s, require_fit, enable_migrations,\n"
      "             invite_group_size, fast_sampler\n"
      "  memory:    streaming_traces (O(VMs) trace cursors, bit-identical\n"
      "             stream; DESIGN.md Sec. 14)\n"
      "  faults:    under a [faults] section (or faults.-prefixed):\n"
      "             server_mtbf_s, server_mttr_s, migration_abort_prob,\n"
      "             boot_failure_prob, max_boot_retries,\n"
      "             invitation_loss_prob, reply_loss_prob, max_invite_rounds,\n"
      "             redeploy_delay_s, redeploy_backoff_s,\n"
      "             redeploy_backoff_max_s, redeploy_max_attempts,\n"
      "             schedule (e.g. crash 10-20 3600 600, repair 5 7200)\n"
      "  robustness: [checkpoint] out, every_s; [audit] every_s,\n"
      "             action (log|abort|heal), tolerance, strict;\n"
      "             [watchdog] stall_s — all disabled by default\n"
      "\n"
      "consolidation config keys:\n"
      "  servers, cores_per_server, core_mhz, initial_vms, horizon_hours,\n"
      "  mean_lifetime_hours, metrics_period_s, seed + algorithm/workload "
      "keys");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    Options options(argc, argv, 2);
    if (command == "run-daily") return run_daily(options);
    if (command == "run-consolidation") return run_consolidation(options);
    if (command == "serve") return serve(options);
    if (command == "gen-traces") return gen_traces(options);
    if (command == "functions") return functions(options);
    if (command == "help-config") return help_config();
    if (command == "help" || command == "--help" || command == "-h") {
      usage();
      return 0;
    }
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return usage();
  } catch (const std::invalid_argument& error) {
    // Bad flags, bad config keys, incompatible option combinations: the
    // user asked for something the tool cannot parse or honor.
    std::fprintf(stderr, "error: %s\n", error.what());
    return util::exit_code::kConfigError;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return util::exit_code::kRuntimeFailure;
  }
}
