// eventlog2csv — convert a binary decision event log (event_log_binary.hpp)
// to the legacy CSV format, byte-identical to what EventLog::write_csv
// would have produced for the same events.
//
//   eventlog2csv IN.bin [OUT.csv]
//
// With no OUT.csv the CSV goes to stdout. Exits 0 on success, 3 when the
// input ends in a partial record (crash tail: the complete prefix is still
// converted), and 1 on a corrupt or unrecognized input.

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>

#include "ecocloud/metrics/event_log_binary.hpp"

namespace metrics = ecocloud::metrics;

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: eventlog2csv IN.bin [OUT.csv]\n");
    return 2;
  }

  std::ifstream in(argv[1], std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "eventlog2csv: cannot open %s\n", argv[1]);
    return 1;
  }

  try {
    metrics::BinaryReadResult result;
    if (argc == 3) {
      std::ofstream out(argv[2]);
      if (!out.good()) {
        std::fprintf(stderr, "eventlog2csv: cannot open %s\n", argv[2]);
        return 1;
      }
      result = metrics::convert_binary_events_to_csv(in, out);
    } else {
      result = metrics::convert_binary_events_to_csv(in, std::cout);
    }
    if (result.truncated_tail) {
      std::fprintf(stderr,
                   "eventlog2csv: warning: input ends in a partial record "
                   "(crash tail); converted the %zu complete events\n",
                   result.events.size());
      return 3;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "eventlog2csv: %s\n", e.what());
    return 1;
  }
  return 0;
}
