# Empty dependencies file for consolidation_comparison.
# This may be replaced when dependencies are built.
