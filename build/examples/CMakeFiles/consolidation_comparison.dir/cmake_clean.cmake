file(REMOVE_RECURSE
  "CMakeFiles/consolidation_comparison.dir/consolidation_comparison.cpp.o"
  "CMakeFiles/consolidation_comparison.dir/consolidation_comparison.cpp.o.d"
  "consolidation_comparison"
  "consolidation_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidation_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
