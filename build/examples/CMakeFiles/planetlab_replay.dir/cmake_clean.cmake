file(REMOVE_RECURSE
  "CMakeFiles/planetlab_replay.dir/planetlab_replay.cpp.o"
  "CMakeFiles/planetlab_replay.dir/planetlab_replay.cpp.o.d"
  "planetlab_replay"
  "planetlab_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planetlab_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
