file(REMOVE_RECURSE
  "CMakeFiles/fluid_model.dir/fluid_model.cpp.o"
  "CMakeFiles/fluid_model.dir/fluid_model.cpp.o.d"
  "fluid_model"
  "fluid_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
