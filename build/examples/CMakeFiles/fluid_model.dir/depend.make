# Empty dependencies file for fluid_model.
# This may be replaced when dependencies are built.
