file(REMOVE_RECURSE
  "CMakeFiles/daily_cycle.dir/daily_cycle.cpp.o"
  "CMakeFiles/daily_cycle.dir/daily_cycle.cpp.o.d"
  "daily_cycle"
  "daily_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
