# Empty dependencies file for daily_cycle.
# This may be replaced when dependencies are built.
