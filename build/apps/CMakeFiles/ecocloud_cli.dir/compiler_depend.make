# Empty compiler generated dependencies file for ecocloud_cli.
# This may be replaced when dependencies are built.
