file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_cli.dir/ecocloud_cli.cpp.o"
  "CMakeFiles/ecocloud_cli.dir/ecocloud_cli.cpp.o.d"
  "ecocloud_cli"
  "ecocloud_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
