# Empty dependencies file for ecocloud_scenario.
# This may be replaced when dependencies are built.
