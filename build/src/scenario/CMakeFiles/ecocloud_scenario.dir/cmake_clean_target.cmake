file(REMOVE_RECURSE
  "libecocloud_scenario.a"
)
