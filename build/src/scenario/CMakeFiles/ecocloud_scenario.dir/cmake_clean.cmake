file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_scenario.dir/config_io.cpp.o"
  "CMakeFiles/ecocloud_scenario.dir/config_io.cpp.o.d"
  "CMakeFiles/ecocloud_scenario.dir/replication.cpp.o"
  "CMakeFiles/ecocloud_scenario.dir/replication.cpp.o.d"
  "CMakeFiles/ecocloud_scenario.dir/scenario.cpp.o"
  "CMakeFiles/ecocloud_scenario.dir/scenario.cpp.o.d"
  "libecocloud_scenario.a"
  "libecocloud_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
