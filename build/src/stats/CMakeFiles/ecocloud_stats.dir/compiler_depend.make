# Empty compiler generated dependencies file for ecocloud_stats.
# This may be replaced when dependencies are built.
