
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/confidence.cpp" "src/stats/CMakeFiles/ecocloud_stats.dir/confidence.cpp.o" "gcc" "src/stats/CMakeFiles/ecocloud_stats.dir/confidence.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/ecocloud_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/ecocloud_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/stats/CMakeFiles/ecocloud_stats.dir/quantile.cpp.o" "gcc" "src/stats/CMakeFiles/ecocloud_stats.dir/quantile.cpp.o.d"
  "/root/repo/src/stats/rate_window.cpp" "src/stats/CMakeFiles/ecocloud_stats.dir/rate_window.cpp.o" "gcc" "src/stats/CMakeFiles/ecocloud_stats.dir/rate_window.cpp.o.d"
  "/root/repo/src/stats/time_series.cpp" "src/stats/CMakeFiles/ecocloud_stats.dir/time_series.cpp.o" "gcc" "src/stats/CMakeFiles/ecocloud_stats.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecocloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
