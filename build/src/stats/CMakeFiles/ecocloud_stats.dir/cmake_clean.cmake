file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_stats.dir/confidence.cpp.o"
  "CMakeFiles/ecocloud_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/ecocloud_stats.dir/histogram.cpp.o"
  "CMakeFiles/ecocloud_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/ecocloud_stats.dir/quantile.cpp.o"
  "CMakeFiles/ecocloud_stats.dir/quantile.cpp.o.d"
  "CMakeFiles/ecocloud_stats.dir/rate_window.cpp.o"
  "CMakeFiles/ecocloud_stats.dir/rate_window.cpp.o.d"
  "CMakeFiles/ecocloud_stats.dir/time_series.cpp.o"
  "CMakeFiles/ecocloud_stats.dir/time_series.cpp.o.d"
  "libecocloud_stats.a"
  "libecocloud_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
