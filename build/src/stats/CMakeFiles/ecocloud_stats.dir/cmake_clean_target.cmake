file(REMOVE_RECURSE
  "libecocloud_stats.a"
)
