file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_dc.dir/datacenter.cpp.o"
  "CMakeFiles/ecocloud_dc.dir/datacenter.cpp.o.d"
  "CMakeFiles/ecocloud_dc.dir/power.cpp.o"
  "CMakeFiles/ecocloud_dc.dir/power.cpp.o.d"
  "CMakeFiles/ecocloud_dc.dir/server.cpp.o"
  "CMakeFiles/ecocloud_dc.dir/server.cpp.o.d"
  "libecocloud_dc.a"
  "libecocloud_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
