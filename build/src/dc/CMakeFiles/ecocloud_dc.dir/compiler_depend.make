# Empty compiler generated dependencies file for ecocloud_dc.
# This may be replaced when dependencies are built.
