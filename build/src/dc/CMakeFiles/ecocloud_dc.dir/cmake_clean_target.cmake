file(REMOVE_RECURSE
  "libecocloud_dc.a"
)
