
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dc/datacenter.cpp" "src/dc/CMakeFiles/ecocloud_dc.dir/datacenter.cpp.o" "gcc" "src/dc/CMakeFiles/ecocloud_dc.dir/datacenter.cpp.o.d"
  "/root/repo/src/dc/power.cpp" "src/dc/CMakeFiles/ecocloud_dc.dir/power.cpp.o" "gcc" "src/dc/CMakeFiles/ecocloud_dc.dir/power.cpp.o.d"
  "/root/repo/src/dc/server.cpp" "src/dc/CMakeFiles/ecocloud_dc.dir/server.cpp.o" "gcc" "src/dc/CMakeFiles/ecocloud_dc.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecocloud_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecocloud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
