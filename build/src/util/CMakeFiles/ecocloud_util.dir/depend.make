# Empty dependencies file for ecocloud_util.
# This may be replaced when dependencies are built.
