file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_util.dir/csv.cpp.o"
  "CMakeFiles/ecocloud_util.dir/csv.cpp.o.d"
  "CMakeFiles/ecocloud_util.dir/key_value.cpp.o"
  "CMakeFiles/ecocloud_util.dir/key_value.cpp.o.d"
  "CMakeFiles/ecocloud_util.dir/rng.cpp.o"
  "CMakeFiles/ecocloud_util.dir/rng.cpp.o.d"
  "CMakeFiles/ecocloud_util.dir/string_util.cpp.o"
  "CMakeFiles/ecocloud_util.dir/string_util.cpp.o.d"
  "CMakeFiles/ecocloud_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ecocloud_util.dir/thread_pool.cpp.o.d"
  "libecocloud_util.a"
  "libecocloud_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
