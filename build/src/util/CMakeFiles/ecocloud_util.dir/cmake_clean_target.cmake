file(REMOVE_RECURSE
  "libecocloud_util.a"
)
