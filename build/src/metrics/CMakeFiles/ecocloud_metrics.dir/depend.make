# Empty dependencies file for ecocloud_metrics.
# This may be replaced when dependencies are built.
