file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_metrics.dir/collector.cpp.o"
  "CMakeFiles/ecocloud_metrics.dir/collector.cpp.o.d"
  "CMakeFiles/ecocloud_metrics.dir/episode_summary.cpp.o"
  "CMakeFiles/ecocloud_metrics.dir/episode_summary.cpp.o.d"
  "CMakeFiles/ecocloud_metrics.dir/event_log.cpp.o"
  "CMakeFiles/ecocloud_metrics.dir/event_log.cpp.o.d"
  "libecocloud_metrics.a"
  "libecocloud_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
