file(REMOVE_RECURSE
  "libecocloud_metrics.a"
)
