file(REMOVE_RECURSE
  "libecocloud_ode.a"
)
