# Empty compiler generated dependencies file for ecocloud_ode.
# This may be replaced when dependencies are built.
