file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_ode.dir/fluid_model.cpp.o"
  "CMakeFiles/ecocloud_ode.dir/fluid_model.cpp.o.d"
  "CMakeFiles/ecocloud_ode.dir/poisson_binomial.cpp.o"
  "CMakeFiles/ecocloud_ode.dir/poisson_binomial.cpp.o.d"
  "CMakeFiles/ecocloud_ode.dir/solver.cpp.o"
  "CMakeFiles/ecocloud_ode.dir/solver.cpp.o.d"
  "libecocloud_ode.a"
  "libecocloud_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
