file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_trace.dir/arrivals.cpp.o"
  "CMakeFiles/ecocloud_trace.dir/arrivals.cpp.o.d"
  "CMakeFiles/ecocloud_trace.dir/diurnal.cpp.o"
  "CMakeFiles/ecocloud_trace.dir/diurnal.cpp.o.d"
  "CMakeFiles/ecocloud_trace.dir/planetlab_io.cpp.o"
  "CMakeFiles/ecocloud_trace.dir/planetlab_io.cpp.o.d"
  "CMakeFiles/ecocloud_trace.dir/rate_estimator.cpp.o"
  "CMakeFiles/ecocloud_trace.dir/rate_estimator.cpp.o.d"
  "CMakeFiles/ecocloud_trace.dir/trace_set.cpp.o"
  "CMakeFiles/ecocloud_trace.dir/trace_set.cpp.o.d"
  "CMakeFiles/ecocloud_trace.dir/workload_model.cpp.o"
  "CMakeFiles/ecocloud_trace.dir/workload_model.cpp.o.d"
  "libecocloud_trace.a"
  "libecocloud_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
