# Empty dependencies file for ecocloud_trace.
# This may be replaced when dependencies are built.
