file(REMOVE_RECURSE
  "libecocloud_trace.a"
)
