
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/arrivals.cpp" "src/trace/CMakeFiles/ecocloud_trace.dir/arrivals.cpp.o" "gcc" "src/trace/CMakeFiles/ecocloud_trace.dir/arrivals.cpp.o.d"
  "/root/repo/src/trace/diurnal.cpp" "src/trace/CMakeFiles/ecocloud_trace.dir/diurnal.cpp.o" "gcc" "src/trace/CMakeFiles/ecocloud_trace.dir/diurnal.cpp.o.d"
  "/root/repo/src/trace/planetlab_io.cpp" "src/trace/CMakeFiles/ecocloud_trace.dir/planetlab_io.cpp.o" "gcc" "src/trace/CMakeFiles/ecocloud_trace.dir/planetlab_io.cpp.o.d"
  "/root/repo/src/trace/rate_estimator.cpp" "src/trace/CMakeFiles/ecocloud_trace.dir/rate_estimator.cpp.o" "gcc" "src/trace/CMakeFiles/ecocloud_trace.dir/rate_estimator.cpp.o.d"
  "/root/repo/src/trace/trace_set.cpp" "src/trace/CMakeFiles/ecocloud_trace.dir/trace_set.cpp.o" "gcc" "src/trace/CMakeFiles/ecocloud_trace.dir/trace_set.cpp.o.d"
  "/root/repo/src/trace/workload_model.cpp" "src/trace/CMakeFiles/ecocloud_trace.dir/workload_model.cpp.o" "gcc" "src/trace/CMakeFiles/ecocloud_trace.dir/workload_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecocloud_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ecocloud_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecocloud_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
