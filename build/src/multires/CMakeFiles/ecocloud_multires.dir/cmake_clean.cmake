file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_multires.dir/multi_resource.cpp.o"
  "CMakeFiles/ecocloud_multires.dir/multi_resource.cpp.o.d"
  "libecocloud_multires.a"
  "libecocloud_multires.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_multires.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
