
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multires/multi_resource.cpp" "src/multires/CMakeFiles/ecocloud_multires.dir/multi_resource.cpp.o" "gcc" "src/multires/CMakeFiles/ecocloud_multires.dir/multi_resource.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecocloud_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ecocloud_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ecocloud_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ecocloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dc/CMakeFiles/ecocloud_dc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecocloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecocloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
