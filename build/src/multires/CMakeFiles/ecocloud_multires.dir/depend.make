# Empty dependencies file for ecocloud_multires.
# This may be replaced when dependencies are built.
