file(REMOVE_RECURSE
  "libecocloud_multires.a"
)
