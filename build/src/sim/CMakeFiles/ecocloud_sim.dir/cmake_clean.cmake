file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_sim.dir/simulator.cpp.o"
  "CMakeFiles/ecocloud_sim.dir/simulator.cpp.o.d"
  "libecocloud_sim.a"
  "libecocloud_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
