# Empty dependencies file for ecocloud_sim.
# This may be replaced when dependencies are built.
