file(REMOVE_RECURSE
  "libecocloud_sim.a"
)
