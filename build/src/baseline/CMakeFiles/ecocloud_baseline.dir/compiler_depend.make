# Empty compiler generated dependencies file for ecocloud_baseline.
# This may be replaced when dependencies are built.
