
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/centralized_controller.cpp" "src/baseline/CMakeFiles/ecocloud_baseline.dir/centralized_controller.cpp.o" "gcc" "src/baseline/CMakeFiles/ecocloud_baseline.dir/centralized_controller.cpp.o.d"
  "/root/repo/src/baseline/mm_selection.cpp" "src/baseline/CMakeFiles/ecocloud_baseline.dir/mm_selection.cpp.o" "gcc" "src/baseline/CMakeFiles/ecocloud_baseline.dir/mm_selection.cpp.o.d"
  "/root/repo/src/baseline/placement.cpp" "src/baseline/CMakeFiles/ecocloud_baseline.dir/placement.cpp.o" "gcc" "src/baseline/CMakeFiles/ecocloud_baseline.dir/placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecocloud_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecocloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dc/CMakeFiles/ecocloud_dc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
