file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_baseline.dir/centralized_controller.cpp.o"
  "CMakeFiles/ecocloud_baseline.dir/centralized_controller.cpp.o.d"
  "CMakeFiles/ecocloud_baseline.dir/mm_selection.cpp.o"
  "CMakeFiles/ecocloud_baseline.dir/mm_selection.cpp.o.d"
  "CMakeFiles/ecocloud_baseline.dir/placement.cpp.o"
  "CMakeFiles/ecocloud_baseline.dir/placement.cpp.o.d"
  "libecocloud_baseline.a"
  "libecocloud_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
