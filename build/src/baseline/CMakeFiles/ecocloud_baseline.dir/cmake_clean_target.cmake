file(REMOVE_RECURSE
  "libecocloud_baseline.a"
)
