file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_core.dir/assignment.cpp.o"
  "CMakeFiles/ecocloud_core.dir/assignment.cpp.o.d"
  "CMakeFiles/ecocloud_core.dir/controller.cpp.o"
  "CMakeFiles/ecocloud_core.dir/controller.cpp.o.d"
  "CMakeFiles/ecocloud_core.dir/migration.cpp.o"
  "CMakeFiles/ecocloud_core.dir/migration.cpp.o.d"
  "CMakeFiles/ecocloud_core.dir/open_system.cpp.o"
  "CMakeFiles/ecocloud_core.dir/open_system.cpp.o.d"
  "CMakeFiles/ecocloud_core.dir/params.cpp.o"
  "CMakeFiles/ecocloud_core.dir/params.cpp.o.d"
  "CMakeFiles/ecocloud_core.dir/probability.cpp.o"
  "CMakeFiles/ecocloud_core.dir/probability.cpp.o.d"
  "CMakeFiles/ecocloud_core.dir/trace_driver.cpp.o"
  "CMakeFiles/ecocloud_core.dir/trace_driver.cpp.o.d"
  "libecocloud_core.a"
  "libecocloud_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
