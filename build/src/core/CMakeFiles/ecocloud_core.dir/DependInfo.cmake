
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cpp" "src/core/CMakeFiles/ecocloud_core.dir/assignment.cpp.o" "gcc" "src/core/CMakeFiles/ecocloud_core.dir/assignment.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/ecocloud_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/ecocloud_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/migration.cpp" "src/core/CMakeFiles/ecocloud_core.dir/migration.cpp.o" "gcc" "src/core/CMakeFiles/ecocloud_core.dir/migration.cpp.o.d"
  "/root/repo/src/core/open_system.cpp" "src/core/CMakeFiles/ecocloud_core.dir/open_system.cpp.o" "gcc" "src/core/CMakeFiles/ecocloud_core.dir/open_system.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/ecocloud_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/ecocloud_core.dir/params.cpp.o.d"
  "/root/repo/src/core/probability.cpp" "src/core/CMakeFiles/ecocloud_core.dir/probability.cpp.o" "gcc" "src/core/CMakeFiles/ecocloud_core.dir/probability.cpp.o.d"
  "/root/repo/src/core/trace_driver.cpp" "src/core/CMakeFiles/ecocloud_core.dir/trace_driver.cpp.o" "gcc" "src/core/CMakeFiles/ecocloud_core.dir/trace_driver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ecocloud_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecocloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dc/CMakeFiles/ecocloud_dc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ecocloud_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ecocloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ecocloud_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
