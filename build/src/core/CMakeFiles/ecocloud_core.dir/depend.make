# Empty dependencies file for ecocloud_core.
# This may be replaced when dependencies are built.
