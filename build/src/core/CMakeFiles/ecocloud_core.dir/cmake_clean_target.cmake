file(REMOVE_RECURSE
  "libecocloud_core.a"
)
