file(REMOVE_RECURSE
  "CMakeFiles/ecocloud_net.dir/topology.cpp.o"
  "CMakeFiles/ecocloud_net.dir/topology.cpp.o.d"
  "libecocloud_net.a"
  "libecocloud_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecocloud_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
