file(REMOVE_RECURSE
  "libecocloud_net.a"
)
