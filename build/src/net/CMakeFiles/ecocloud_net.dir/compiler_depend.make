# Empty compiler generated dependencies file for ecocloud_net.
# This may be replaced when dependencies are built.
