file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_vm_utilization_distribution.dir/bench_fig04_vm_utilization_distribution.cpp.o"
  "CMakeFiles/bench_fig04_vm_utilization_distribution.dir/bench_fig04_vm_utilization_distribution.cpp.o.d"
  "bench_fig04_vm_utilization_distribution"
  "bench_fig04_vm_utilization_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_vm_utilization_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
