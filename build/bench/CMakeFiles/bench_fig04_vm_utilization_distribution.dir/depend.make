# Empty dependencies file for bench_fig04_vm_utilization_distribution.
# This may be replaced when dependencies are built.
