# Empty dependencies file for bench_fig05_deviation_distribution.
# This may be replaced when dependencies are built.
