# Empty dependencies file for bench_ablation_operational.
# This may be replaced when dependencies are built.
