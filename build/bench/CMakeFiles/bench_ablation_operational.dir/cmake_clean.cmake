file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_operational.dir/bench_ablation_operational.cpp.o"
  "CMakeFiles/bench_ablation_operational.dir/bench_ablation_operational.cpp.o.d"
  "bench_ablation_operational"
  "bench_ablation_operational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_operational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
