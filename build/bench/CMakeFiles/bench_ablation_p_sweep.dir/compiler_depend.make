# Empty compiler generated dependencies file for bench_ablation_p_sweep.
# This may be replaced when dependencies are built.
