# Empty compiler generated dependencies file for bench_fig10_server_switches.
# This may be replaced when dependencies are built.
