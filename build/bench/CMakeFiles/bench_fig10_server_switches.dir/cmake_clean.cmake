file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_server_switches.dir/bench_fig10_server_switches.cpp.o"
  "CMakeFiles/bench_fig10_server_switches.dir/bench_fig10_server_switches.cpp.o.d"
  "bench_fig10_server_switches"
  "bench_fig10_server_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_server_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
