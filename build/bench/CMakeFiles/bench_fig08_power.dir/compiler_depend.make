# Empty compiler generated dependencies file for bench_fig08_power.
# This may be replaced when dependencies are built.
