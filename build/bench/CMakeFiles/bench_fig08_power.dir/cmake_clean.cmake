file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_power.dir/bench_fig08_power.cpp.o"
  "CMakeFiles/bench_fig08_power.dir/bench_fig08_power.cpp.o.d"
  "bench_fig08_power"
  "bench_fig08_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
