file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_assignment_function.dir/bench_fig02_assignment_function.cpp.o"
  "CMakeFiles/bench_fig02_assignment_function.dir/bench_fig02_assignment_function.cpp.o.d"
  "bench_fig02_assignment_function"
  "bench_fig02_assignment_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_assignment_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
