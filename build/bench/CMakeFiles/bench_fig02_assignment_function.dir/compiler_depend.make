# Empty compiler generated dependencies file for bench_fig02_assignment_function.
# This may be replaced when dependencies are built.
