# Empty compiler generated dependencies file for bench_fig06_server_utilization.
# This may be replaced when dependencies are built.
