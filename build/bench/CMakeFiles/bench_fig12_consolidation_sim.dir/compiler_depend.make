# Empty compiler generated dependencies file for bench_fig12_consolidation_sim.
# This may be replaced when dependencies are built.
