file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_consolidation_sim.dir/bench_fig12_consolidation_sim.cpp.o"
  "CMakeFiles/bench_fig12_consolidation_sim.dir/bench_fig12_consolidation_sim.cpp.o.d"
  "bench_fig12_consolidation_sim"
  "bench_fig12_consolidation_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_consolidation_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
