file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_migrations.dir/bench_fig09_migrations.cpp.o"
  "CMakeFiles/bench_fig09_migrations.dir/bench_fig09_migrations.cpp.o.d"
  "bench_fig09_migrations"
  "bench_fig09_migrations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_migrations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
