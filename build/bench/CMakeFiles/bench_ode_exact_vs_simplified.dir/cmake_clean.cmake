file(REMOVE_RECURSE
  "CMakeFiles/bench_ode_exact_vs_simplified.dir/bench_ode_exact_vs_simplified.cpp.o"
  "CMakeFiles/bench_ode_exact_vs_simplified.dir/bench_ode_exact_vs_simplified.cpp.o.d"
  "bench_ode_exact_vs_simplified"
  "bench_ode_exact_vs_simplified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ode_exact_vs_simplified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
