# Empty compiler generated dependencies file for bench_ode_exact_vs_simplified.
# This may be replaced when dependencies are built.
