# Empty compiler generated dependencies file for bench_fig03_migration_functions.
# This may be replaced when dependencies are built.
