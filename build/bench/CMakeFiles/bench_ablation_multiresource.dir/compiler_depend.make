# Empty compiler generated dependencies file for bench_ablation_multiresource.
# This may be replaced when dependencies are built.
