# Empty dependencies file for bench_fig07_active_servers.
# This may be replaced when dependencies are built.
