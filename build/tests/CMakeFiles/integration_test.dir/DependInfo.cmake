
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/ecocloud_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/multires/CMakeFiles/ecocloud_multires.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ecocloud_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ecocloud_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/ecocloud_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ecocloud_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ecocloud_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ecocloud_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ecocloud_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dc/CMakeFiles/ecocloud_dc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ecocloud_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ecocloud_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
