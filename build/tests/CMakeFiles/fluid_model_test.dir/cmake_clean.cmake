file(REMOVE_RECURSE
  "CMakeFiles/fluid_model_test.dir/fluid_model_test.cpp.o"
  "CMakeFiles/fluid_model_test.dir/fluid_model_test.cpp.o.d"
  "fluid_model_test"
  "fluid_model_test.pdb"
  "fluid_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
