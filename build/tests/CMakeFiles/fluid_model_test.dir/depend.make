# Empty dependencies file for fluid_model_test.
# This may be replaced when dependencies are built.
