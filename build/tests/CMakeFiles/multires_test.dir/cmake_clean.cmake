file(REMOVE_RECURSE
  "CMakeFiles/multires_test.dir/multires_test.cpp.o"
  "CMakeFiles/multires_test.dir/multires_test.cpp.o.d"
  "multires_test"
  "multires_test.pdb"
  "multires_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multires_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
