# Empty compiler generated dependencies file for multires_test.
# This may be replaced when dependencies are built.
