# Empty compiler generated dependencies file for dc_test.
# This may be replaced when dependencies are built.
