// PlanetLab replay example: imports a CoMon/PlanetLab-format trace
// directory (one file per VM, one utilization percentage per line — the
// format of the public CloudSim "planetlab" dataset and of the logs the
// paper used) and replays it through the full ecoCloud experiment.
//
//   $ ./planetlab_replay <trace-dir> [servers=100]
//
// Without an argument, a synthetic directory is generated first so the
// example runs out of the box:
//
//   $ ./planetlab_replay

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "ecocloud/scenario/scenario.hpp"
#include "ecocloud/trace/planetlab_io.hpp"

using namespace ecocloud;

int main(int argc, char** argv) {
  std::filesystem::path dir;
  if (argc > 1) {
    dir = argv[1];
  } else {
    // Self-contained demo: synthesize a small PlanetLab-style directory.
    dir = std::filesystem::temp_directory_path() / "ecocloud_planetlab_demo";
    std::printf("no trace directory given; generating a demo set in %s\n\n",
                dir.string().c_str());
    trace::WorkloadModel model;
    util::Rng rng(2012);
    const auto synthetic = trace::TraceSet::generate(model, 1500, 12 * 12 + 1, rng);
    trace::write_planetlab_dir(synthetic, dir);
  }
  const std::size_t servers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 100;

  // Import. Percentages are interpreted against a 2 GHz reference core
  // (DESIGN.md Sec. 5); adjust reference_mhz for differently scaled logs.
  const auto traces = trace::read_planetlab_dir(dir, 300.0, 2000.0);
  std::printf("imported %zu VM traces x %zu samples (%.0f-s cadence)\n",
              traces.num_vms(), traces.num_steps(), traces.sample_period_s());

  scenario::DailyConfig config;
  config.fleet.num_servers = servers;
  config.horizon_s =
      static_cast<double>(traces.num_steps() - 1) * traces.sample_period_s();
  std::printf("replaying %.1f h over %zu servers under ecoCloud...\n\n",
              config.horizon_s / sim::kHour, servers);

  scenario::DailyScenario daily(config, traces);
  daily.run();

  const auto& d = daily.datacenter();
  std::printf("active servers at end : %zu / %zu\n", d.active_server_count(),
              d.num_servers());
  std::printf("energy                : %.1f kWh\n", d.energy_joules() / 3.6e6);
  std::printf("migrations            : %llu\n",
              static_cast<unsigned long long>(d.total_migrations()));
  std::printf("CPU over-demand       : %.4f%% of VM-time\n",
              d.vm_seconds() > 0.0
                  ? 100.0 * d.overload_vm_seconds() / d.vm_seconds()
                  : 0.0);
  return 0;
}
