// Quickstart: build a small data center, hand it to the ecoCloud
// controller, deploy a batch of VMs and watch the fleet consolidate.
//
//   $ ./quickstart
//
// Walks through the library's core objects: Simulator (event kernel),
// DataCenter (servers + VMs + exact accounting), EcoCloudController (the
// paper's decentralized assignment/migration procedures).

#include <cstdio>

#include "ecocloud/core/controller.hpp"
#include "ecocloud/dc/datacenter.hpp"
#include "ecocloud/sim/simulator.hpp"
#include "ecocloud/util/rng.hpp"

using namespace ecocloud;

int main() {
  // 1. The event kernel and the data-center state.
  sim::Simulator simulator;
  dc::DataCenter datacenter;  // default linear power model, idle = 70% peak

  // 16 six-core 2 GHz servers, all initially hibernated.
  for (int i = 0; i < 16; ++i) {
    datacenter.add_server(/*num_cores=*/6, /*core_mhz=*/2000.0);
  }

  // 2. The ecoCloud controller with the paper's default parameters:
  //    Ta=0.90 p=3, Tl=0.50 Th=0.95, alpha=beta=0.25.
  core::EcoCloudParams params;
  core::EcoCloudController controller(simulator, datacenter, params,
                                      util::Rng(/*seed=*/42));
  controller.start();  // per-server monitor loops (migration procedure)

  // 3. Deploy 120 VMs of ~400 MHz each. The first invitation rounds find
  //    no active server, so the manager wakes machines which then fill up
  //    during their post-boot grace period.
  util::Rng rng(7);
  for (int i = 0; i < 120; ++i) {
    const dc::VmId vm = datacenter.create_vm(rng.uniform(200.0, 600.0));
    controller.deploy_vm(vm);
  }

  // 4. Let the system run for six simulated hours and report every hour.
  for (int hour = 1; hour <= 6; ++hour) {
    simulator.run_until(hour * sim::kHour);
    datacenter.advance_to(simulator.now());
    std::printf(
        "t=%dh  active=%2zu/16  load=%4.1f%%  power=%6.0f W  "
        "migrations=%llu  energy so far=%.2f kWh\n",
        hour, datacenter.active_server_count(),
        100.0 * datacenter.overall_load(), datacenter.total_power_w(),
        static_cast<unsigned long long>(datacenter.total_migrations()),
        datacenter.energy_joules() / 3.6e6);
  }

  // 5. Where did everything end up?
  std::printf("\nfinal placement:\n");
  for (const dc::Server& server : datacenter.servers()) {
    if (!server.active()) continue;
    std::printf("  server %2u: %2zu VMs, utilization %4.1f%%\n", server.id(),
                server.vm_count(), 100.0 * server.utilization());
  }
  std::printf(
      "\nThe fleet consolidated onto %zu servers; the paper's assignment "
      "function keeps each below Ta=%.2f.\n",
      datacenter.active_server_count(), params.ta);
  return 0;
}
