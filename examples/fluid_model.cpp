// Fluid-model example: the paper's Sec. IV analysis pipeline — run the
// migration-free consolidation simulation, estimate lambda(t) from its
// arrival log, feed the differential equations (exact and simplified) with
// the same inputs and compare the transients.
//
//   $ ./fluid_model

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ecocloud/ode/fluid_model.hpp"
#include "ecocloud/scenario/scenario.hpp"

using namespace ecocloud;

int main() {
  // --- the simulation side (Fig. 12) ---
  scenario::ConsolidationConfig sim_config;
  sim_config.num_servers = 100;
  sim_config.initial_vms = 1500;
  sim_config.horizon_s = 18.0 * sim::kHour;
  scenario::ConsolidationScenario cons(sim_config);
  cons.run();
  std::printf("simulation: %zu servers, %zu initial VMs, %.0f h, migrations off\n",
              sim_config.num_servers, sim_config.initial_vms,
              sim_config.horizon_s / sim::kHour);
  std::printf("  final active servers: %zu\n\n",
              cons.datacenter().active_server_count());

  // --- the analytical side (Fig. 13) ---
  const auto& u0 = cons.collector().utilization_snapshots().front();
  ode::FluidModelConfig config;
  config.num_servers = sim_config.num_servers;
  config.ta = sim_config.params.ta;
  config.p = sim_config.params.p;
  config.lambda = cons.rates().lambda_fn();  // estimated from the sim's log
  const double nu = cons.nu();
  config.nu = [nu](double) { return nu; };
  config.vm_share.assign(sim_config.num_servers, cons.mean_vm_share());

  std::printf("fluid model inputs: nu=%.2e /s, mean vm share=%.4f, "
              "lambda(0)=%.4f /s\n\n", nu, cons.mean_vm_share(),
              config.lambda(0.0));

  for (bool exact : {false, true}) {
    config.exact = exact;
    ode::FluidModel model(config);
    std::printf("%s model (Eq. %s):\n", exact ? "exact" : "simplified",
                exact ? "5-9" : "11");
    std::printf("  hour  active  mean_u  max_u\n");
    const auto observe = [&](double t, const std::vector<double>& u) {
      const double h = t / sim::kHour;
      if (std::fabs(h - std::round(h)) > 1e-9 ||
          static_cast<int>(std::round(h)) % 3 != 0) {
        return;
      }
      double total = 0.0, max_u = 0.0;
      for (double x : u) {
        total += x;
        max_u = std::max(max_u, x);
      }
      std::printf("  %4.0f  %6zu  %.4f  %.4f\n", h,
                  ode::FluidModel::count_active(u), total / u.size(), max_u);
    };
    const auto final_u = ode::integrate_rk4(model.rhs(), u0, 0.0,
                                            sim_config.horizon_s, 10.0, observe);
    std::printf("  -> final active: %zu (simulation: %zu; paper: 43 vs 45)\n\n",
                ode::FluidModel::count_active(final_u),
                cons.datacenter().active_server_count());
  }
  return 0;
}
