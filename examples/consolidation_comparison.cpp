// Comparison example: the same 24-hour workload driven by ecoCloud and by
// the centralized Beloglazov-Buyya style policies (MBFD placement + MM
// reallocation, FFD, random-fit). Shows the trade-off the paper argues:
// comparable energy, but decentralized + gradual instead of centralized +
// bursty.
//
//   $ ./consolidation_comparison

#include <cstdio>

#include "ecocloud/scenario/scenario.hpp"

using namespace ecocloud;

namespace {

scenario::DailyConfig shared_config() {
  scenario::DailyConfig config;
  config.fleet.num_servers = 200;
  config.num_vms = 3000;
  config.horizon_s = 30.0 * sim::kHour;
  config.warmup_s = 6.0 * sim::kHour;  // skip the bootstrap transient
  config.seed = 1234;                  // identical traces for everyone
  return config;
}

void report(const char* name, scenario::DailyScenario& daily) {
  const auto& d = daily.datacenter();
  double active = 0.0;
  std::size_t n = 0;
  for (const auto& s : daily.collector().samples()) {
    if (s.time <= 6.0 * sim::kHour) continue;
    active += static_cast<double>(s.active_servers);
    ++n;
  }
  std::printf("%-10s %9.1f %11.1f %11llu %14zu %10.4f%%\n", name,
              d.energy_joules() / 3.6e6, n ? active / n : 0.0,
              static_cast<unsigned long long>(d.total_migrations()),
              d.max_inflight_migrations(),
              d.vm_seconds() > 0.0
                  ? 100.0 * d.overload_vm_seconds() / d.vm_seconds()
                  : 0.0);
}

}  // namespace

int main() {
  std::printf("same 24 h workload, four consolidation policies\n\n");
  std::printf("%-10s %9s %11s %11s %14s %11s\n", "policy", "kWh", "mean act.",
              "migrations", "max in-flight", "overload");

  {
    scenario::DailyScenario eco(shared_config(), scenario::Algorithm::kEcoCloud);
    eco.run();
    report("ecoCloud", eco);
  }
  const struct {
    const char* name;
    baseline::PlacementPolicy policy;
  } centralized[] = {
      {"MBFD+MM", baseline::PlacementPolicy::kBestFitDecreasing},
      {"FFD", baseline::PlacementPolicy::kFirstFitDecreasing},
      {"RandomFit", baseline::PlacementPolicy::kRandomFit},
  };
  for (const auto& contender : centralized) {
    baseline::CentralizedParams params;
    params.policy = contender.policy;
    scenario::DailyScenario central(shared_config(),
                                    scenario::Algorithm::kCentralized, params);
    central.run();
    report(contender.name, central);
  }

  std::printf(
      "\necoCloud trades a few %% of energy for: no global optimizer, "
      "gradual migrations (low max in-flight), and lower overload.\n");
  return 0;
}
