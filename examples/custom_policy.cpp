// Custom-policy example: the simulation substrate (Simulator + DataCenter)
// is policy-agnostic — this file implements a new consolidation policy
// from scratch in ~80 lines and races it against ecoCloud on the same
// workload. The policy: a centralized "pack onto the most-loaded server
// that fits" greedy with periodic drain of the emptiest server.
//
//   $ ./custom_policy

#include <algorithm>
#include <cstdio>
#include <optional>

#include "ecocloud/scenario/scenario.hpp"

using namespace ecocloud;

namespace {

/// A deliberately simple competitor: most-loaded-first placement plus a
/// periodic "drain the emptiest server" pass. Everything it needs from the
/// library is the DataCenter interface the built-in controllers use.
class GreedyPacker {
 public:
  GreedyPacker(sim::Simulator& simulator, dc::DataCenter& datacenter)
      : sim_(simulator), dc_(datacenter) {}

  void start() {
    sim_.schedule_periodic(600.0, [this] { drain_emptiest(); }, 600.0);
  }

  bool deploy_vm(dc::VmId vm) {
    const double demand = dc_.vm(vm).demand_mhz;
    if (const auto target = most_loaded_fitting(demand, dc::kNoServer)) {
      dc_.place_vm(sim_.now(), vm, *target);
      return true;
    }
    // Open a new server instantly (this toy policy ignores boot latency —
    // one of the things the real controllers get right).
    for (const auto& server : dc_.servers()) {
      if (server.hibernated()) {
        dc_.start_booting(sim_.now(), server.id());
        dc_.finish_booting(sim_.now(), server.id());
        dc_.place_vm(sim_.now(), vm, server.id());
        return true;
      }
    }
    return false;
  }

 private:
  std::optional<dc::ServerId> most_loaded_fitting(double demand_mhz,
                                                  dc::ServerId exclude) const {
    std::optional<dc::ServerId> best;
    double best_u = -1.0;
    for (const auto& server : dc_.servers()) {
      if (!server.active() || server.id() == exclude) continue;
      const double committed = server.demand_mhz() + server.reserved_mhz();
      if ((committed + demand_mhz) / server.capacity_mhz() > 0.9) continue;
      if (server.utilization() > best_u) {
        best_u = server.utilization();
        best = server.id();
      }
    }
    return best;
  }

  void drain_emptiest() {
    // Find the least-loaded non-empty server and try to move every VM off.
    dc::ServerId victim = dc::kNoServer;
    double lowest = 2.0;
    for (const auto& server : dc_.servers()) {
      if (server.active() && !server.empty() && server.utilization() < lowest) {
        lowest = server.utilization();
        victim = server.id();
      }
    }
    if (victim == dc::kNoServer || lowest > 0.4) return;
    const std::vector<dc::VmId> vms = dc_.server(victim).vms();  // copy
    for (dc::VmId vm : vms) {
      const auto target = most_loaded_fitting(dc_.vm(vm).demand_mhz, victim);
      if (!target) return;  // partial drain; retry next period
      dc_.begin_migration(sim_.now(), vm, *target);
      dc_.complete_migration(sim_.now(), vm);
    }
    if (dc_.server(victim).empty()) dc_.hibernate(sim_.now(), victim);
  }

  sim::Simulator& sim_;
  dc::DataCenter& dc_;
};

struct Outcome {
  double energy_kwh;
  std::size_t active;
  std::uint64_t migrations;
  double overload_pct;
};

Outcome run_greedy(const trace::TraceSet& traces) {
  sim::Simulator simulator;
  dc::DataCenter datacenter;
  scenario::FleetConfig fleet;
  fleet.num_servers = 100;
  scenario::build_fleet(datacenter, fleet);
  core::TraceDriver driver(simulator, datacenter, traces);
  GreedyPacker packer(simulator, datacenter);
  packer.start();
  for (std::size_t i = 0; i < traces.num_vms(); ++i) {
    const dc::VmId vm = datacenter.create_vm(0.0, traces.ram_mb(i));
    driver.map_vm(i, vm);
    packer.deploy_vm(vm);
  }
  driver.start();
  simulator.run_until(24.0 * sim::kHour);
  datacenter.advance_to(simulator.now());
  return {datacenter.energy_joules() / 3.6e6, datacenter.active_server_count(),
          datacenter.total_migrations(),
          100.0 * datacenter.overload_vm_seconds() / datacenter.vm_seconds()};
}

Outcome run_ecocloud(const trace::TraceSet& traces) {
  scenario::DailyConfig config;
  config.fleet.num_servers = 100;
  config.horizon_s = 24.0 * sim::kHour;
  scenario::DailyScenario daily(config, traces);
  daily.run();
  const auto& d = daily.datacenter();
  return {d.energy_joules() / 3.6e6, d.active_server_count(),
          d.total_migrations(),
          100.0 * d.overload_vm_seconds() / d.vm_seconds()};
}

}  // namespace

int main() {
  trace::WorkloadModel model;
  util::Rng rng(31337);
  const auto traces = trace::TraceSet::generate(model, 1500, 24 * 12 + 2, rng);

  std::printf("1500 VMs, 100 servers, 24 h — ecoCloud vs a hand-rolled policy\n\n");
  std::printf("%-14s %8s %8s %11s %10s\n", "policy", "kWh", "active",
              "migrations", "overload");
  const Outcome eco = run_ecocloud(traces);
  std::printf("%-14s %8.1f %8zu %11llu %9.4f%%\n", "ecoCloud", eco.energy_kwh,
              eco.active, static_cast<unsigned long long>(eco.migrations),
              eco.overload_pct);
  const Outcome greedy = run_greedy(traces);
  std::printf("%-14s %8.1f %8zu %11llu %9.4f%%\n", "greedy-packer",
              greedy.energy_kwh, greedy.active,
              static_cast<unsigned long long>(greedy.migrations),
              greedy.overload_pct);
  std::printf(
      "\nThe point: new policies plug into the same Simulator/DataCenter\n"
      "substrate the paper's algorithms use — ~80 lines for a working one.\n"
      "(And why the paper's migration procedure matters: packing hard at Ta\n"
      "without overload relief saves watts but destroys QoS — compare the\n"
      "overload columns.)\n");
  return 0;
}
