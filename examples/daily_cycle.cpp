// Daily-cycle example: the paper's Sec. III experiment end to end — a
// 400-server data center under 6,000 trace-driven VMs for 48 hours, with a
// morning ramp and evening descent. Prints an hourly report and the final
// energy/QoS summary.
//
//   $ ./daily_cycle [hours=48] [servers=400] [vms=6000]

#include <cstdio>
#include <cstdlib>

#include "ecocloud/metrics/episode_summary.hpp"
#include "ecocloud/scenario/scenario.hpp"

using namespace ecocloud;

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 48.0;
  const std::size_t servers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 400;
  const std::size_t vms = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 6000;

  scenario::DailyConfig config;
  config.fleet.num_servers = servers;
  config.num_vms = vms;
  config.horizon_s = hours * sim::kHour;
  scenario::DailyScenario daily(config);

  std::printf("ecoCloud daily cycle: %zu servers, %zu VMs, %.0f h\n", servers,
              vms, hours);
  std::printf("parameters: Ta=%.2f p=%.0f Tl=%.2f Th=%.2f alpha=beta=%.2f\n\n",
              config.params.ta, config.params.p, config.params.tl,
              config.params.th, config.params.alpha);

  daily.run();

  std::printf("hour  load   active  power[kW]  mig/h(lo/hi)  overload%%\n");
  const auto& collector = daily.collector();
  for (const auto& s : collector.samples()) {
    const auto hour = s.time / sim::kHour;
    if (hour != static_cast<std::size_t>(hour) ||
        static_cast<int>(hour) % 2 != 0) {
      continue;  // print every other hour
    }
    const auto w = static_cast<std::size_t>(s.time / collector.sample_period_s()) - 1;
    std::printf("%4.0f  %.3f  %4zu    %7.1f    %3.0f / %-3.0f     %.4f\n", hour,
                s.overall_load, s.active_servers, s.power_w / 1000.0,
                collector.low_migrations().hourly_rate(w),
                collector.high_migrations().hourly_rate(w), s.overload_percent);
  }

  const auto& d = daily.datacenter();
  const auto episodes = metrics::summarize_episodes(d.overload_episodes());
  std::printf("\nsummary over %.0f h:\n", hours);
  std::printf("  energy                 %.1f kWh\n", d.energy_joules() / 3.6e6);
  std::printf("  migrations             %llu (%llu low, %llu high)\n",
              static_cast<unsigned long long>(d.total_migrations()),
              static_cast<unsigned long long>(daily.ecocloud()->low_migrations()),
              static_cast<unsigned long long>(daily.ecocloud()->high_migrations()));
  std::printf("  server switches        %llu on / %llu off\n",
              static_cast<unsigned long long>(d.total_activations()),
              static_cast<unsigned long long>(d.total_hibernations()));
  std::printf("  CPU over-demand        %.4f%% of VM-time\n",
              d.vm_seconds() > 0.0
                  ? 100.0 * d.overload_vm_seconds() / d.vm_seconds()
                  : 0.0);
  std::printf("  violations             %zu, %.1f%% under 30 s, worst grant %.1f%%\n",
              episodes.count, 100.0 * episodes.fraction_under_30s,
              100.0 * episodes.worst_granted_fraction);
  return 0;
}
